"""The crash flight recorder: fixed-size per-node rings of recent spans
and protocol messages, dumped as a Perfetto-loadable snapshot on failure.

The recorder is a tracer sink (see :meth:`repro.obs.tracing.Tracer.add_sink`):
``on_span_close`` appends each closed span to its node's ring and
``on_message`` records a compact summary of every traced outbound message.
Rings are ``collections.deque(maxlen=...)`` — O(1) append, fixed memory,
the tail of history falls off the far end — so the recorder's cost and
footprint are independent of run length.

A dump combines three kinds of evidence:

* the ring spans (recent completed work, per node),
* every span still *open* at dump time (a deadlocked thread's blocked
  span never closes — the rings alone would miss the most important
  evidence), synthetically closed at the dump timestamp and marked
  ``unfinished`` in its args, and
* the message ring, rendered as instant events on a per-node lane.

The snapshot file is Chrome trace-event JSON (load at ui.perfetto.dev)
with extra top-level keys (``format``/``reason``/``spans``) that Perfetto
ignores but :func:`load_snapshot` round-trips, so the export-side tree
validators run on crash dumps unchanged.

``DexCluster.simulate`` triggers the dump automatically for any
:class:`~repro.core.errors.DexError` — deadlocks, sanitizer violations,
unrecovered chaos crashes — when the lens is on (``DEX_LENS=1``).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Tuple

from repro.obs.export import chrome_trace
from repro.obs.tracing import Span, Tracer

__all__ = ["FlightRecorder", "load_snapshot"]

SNAPSHOT_FORMAT = "dex-flightrec-v1"


class FlightRecorder:
    """Per-node bounded history of closed spans and outbound messages."""

    def __init__(
        self,
        tracer: Tracer,
        *,
        num_nodes: int,
        ring_spans: int = 4096,
        ring_msgs: int = 2048,
    ):
        self.tracer = tracer
        self.num_nodes = num_nodes
        self.ring_spans = ring_spans
        self.ring_msgs = ring_msgs
        # node -1 (unbound service work) gets its own ring at index num_nodes
        self._spans: List[deque] = [
            deque(maxlen=ring_spans) for _ in range(num_nodes + 1)
        ]
        self._msgs: List[deque] = [
            deque(maxlen=ring_msgs) for _ in range(num_nodes + 1)
        ]
        self.spans_seen = 0
        self.msgs_seen = 0

    def _ring_index(self, node: int) -> int:
        return node if 0 <= node < self.num_nodes else self.num_nodes

    # -- sink protocol -------------------------------------------------------

    def on_span_close(self, span: Span) -> None:
        self._spans[self._ring_index(span.node)].append(span)
        self.spans_seen += 1

    def on_message(self, now: float, msg) -> None:
        self._msgs[self._ring_index(msg.src)].append((
            now, msg.msg_type, msg.src, msg.dst, msg.trace_id, msg.parent_span,
        ))
        self.msgs_seen += 1

    # -- snapshot ------------------------------------------------------------

    def snapshot_spans(self) -> List[Span]:
        """Ring contents plus currently-open spans, deduped by span id (an
        adopted root can close into the ring between dump decision and
        write), oldest first."""
        seen: Dict[int, Span] = {}
        for ring in self._spans:
            for span in ring:
                seen[span.span_id] = span
        now = self.tracer.engine.now
        for span in self.tracer.open_spans():
            if span.span_id in seen:
                continue
            attrs = dict(span.attrs)
            attrs["unfinished"] = True
            seen[span.span_id] = Span(
                span.name, span.span_id, span.trace_id, span.parent_id,
                span.node, span.tid, span.start_us, now, attrs,
            )
        return [seen[k] for k in sorted(seen)]

    def snapshot_messages(self) -> List[Tuple]:
        out: List[Tuple] = []
        for ring in self._msgs:
            out.extend(ring)
        out.sort(key=lambda rec: rec[0])
        return out

    def dump(self, path: str, *, reason: str = "") -> Dict[str, Any]:
        """Write the snapshot to *path*; returns the document."""
        spans = self.snapshot_spans()
        doc = chrome_trace(spans, dropped=self.tracer.dropped)
        for now, msg_type, src, dst, trace_id, parent_span in self.snapshot_messages():
            doc["traceEvents"].append({
                "name": f"{msg_type} ->n{dst}",
                "cat": "msg",
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": src if src >= 0 else 0,
                "tid": 999,  # dedicated message lane, below the service lanes
                "ts": now,
                "args": {"trace": trace_id, "parent_span": parent_span},
            })
        doc["format"] = SNAPSHOT_FORMAT
        doc["reason"] = reason
        doc["spans"] = [s.to_dict() for s in spans]
        doc["otherData"]["reason"] = reason
        doc["otherData"]["spans_in_rings"] = sum(len(r) for r in self._spans)
        doc["otherData"]["spans_seen"] = self.spans_seen
        doc["otherData"]["msgs_seen"] = self.msgs_seen
        with open(path, "w") as fh:
            json.dump(doc, fh)
        return doc


def load_snapshot(path: str) -> Tuple[List[Span], Dict[str, Any]]:
    """Load a flight-recorder snapshot; returns ``(spans, meta)`` where
    meta carries ``format``/``reason`` and the Perfetto ``otherData``.
    Raises ``ValueError`` for files that aren't flight-recorder dumps."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"{path!r} is not a flight-recorder snapshot"
            f" (format={doc.get('format')!r})"
        )
    spans = [Span.from_dict(d) for d in doc.get("spans", [])]
    meta = {
        "format": doc["format"],
        "reason": doc.get("reason", ""),
        "otherData": doc.get("otherData", {}),
        "events": len(doc.get("traceEvents", [])),
    }
    return spans, meta
