"""DexTrace: the observability layer (causal span tracing, typed metrics,
Perfetto export).

Three parts:

* :mod:`repro.obs.tracing` — :class:`Tracer`/:class:`Span`: causally-linked
  span trees over the simulation, following requests across nodes via
  message-carried trace ids.
* :mod:`repro.obs.metrics` — :class:`Counter`/:class:`Gauge`/:class:`Histogram`
  and :class:`MetricsRegistry`; ``DexStats`` is a typed facade over one.
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto), terminal
  reports, per-phase attribution.
* :mod:`repro.obs.lens` — DexLens: online, bounded-memory trace analytics
  (windowed heat stats, critical-path histograms, live top view) fed by
  span-close sinks; :mod:`repro.obs.ring` is its crash flight recorder.

Enable tracing with ``DexCluster(trace=True)`` / ``SimParams(trace="1")`` or
the ``DEX_TRACE`` environment variable; when off, no tracer object exists
and the instrumented hot paths reduce to a ``None`` check.  The lens has
the same shape behind ``SimParams(lens="1")`` / ``DEX_LENS`` (lens on
implies a tracer).

CLI: ``python -m repro.obs run|report|export|top`` (see ``--help``).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Span, Tracer, load_spans, maybe_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "load_spans",
    "maybe_span",
    "resolve_lens_mode",
    "resolve_scope_mode",
    "resolve_trace_mode",
]

_OFF = frozenset({"", "0", "off", "none", "false", "no"})
_ON = frozenset({"1", "all", "on", "true", "yes", "spans"})


def resolve_trace_mode(setting: Optional[str]) -> str:
    """Normalize a ``SimParams.trace`` setting to ``""`` (off) or ``"spans"``
    (on).  ``None`` defers to the ``DEX_TRACE`` environment variable — the
    same deferral scheme as ``SimParams.sanitize``/``DEX_SANITIZE``."""
    if setting is None:
        setting = os.environ.get("DEX_TRACE", "")
    mode = str(setting).strip().lower()
    if mode in _OFF:
        return ""
    if mode in _ON:
        return "spans"
    raise ValueError(
        f"unknown trace mode {setting!r}; expected one of '', '1'/'on'/'spans'"
    )


def resolve_lens_mode(setting: Optional[str]) -> str:
    """Normalize a ``SimParams.lens`` setting to ``""`` (off) or ``"on"``.
    ``None`` defers to the ``DEX_LENS`` environment variable — the same
    deferral scheme as ``trace``/``DEX_TRACE``."""
    if setting is None:
        setting = os.environ.get("DEX_LENS", "")
    mode = str(setting).strip().lower()
    if mode in _OFF:
        return ""
    if mode in _ON - {"spans"}:
        return "on"
    raise ValueError(
        f"unknown lens mode {setting!r}; expected one of '', '1'/'on'"
    )


def resolve_scope_mode(setting: Optional[str]) -> str:
    """Normalize a ``SimParams.scope`` setting to ``""`` (off) or ``"on"``.
    ``None`` defers to the ``DEX_SCOPE`` environment variable — the same
    deferral scheme as ``trace``/``lens``.  Unlike the lens, the scope does
    not imply a tracer: it samples gauges, not spans."""
    if setting is None:
        setting = os.environ.get("DEX_SCOPE", "")
    mode = str(setting).strip().lower()
    if mode in _OFF:
        return ""
    if mode in _ON - {"spans"}:
        return "on"
    raise ValueError(
        f"unknown scope mode {setting!r}; expected one of '', '1'/'on'"
    )
