"""Run manifests: one JSON document that captures a whole run.

A manifest (``dex-run.json``) is the durable record DexScope leaves
behind: the resolved parameters and seed, the final counter totals, the
fault-latency histograms (full bucket state, so quantiles recompute
offline), the DexLens critical-path phase totals, and the downsampled
utilization time series.  Two manifests are enough to answer "what
changed between these runs, and why" — that comparison is
:mod:`repro.obs.diff`, wired into CI as a trend guard.

Everything in a manifest derives from simulation state: no wall-clock
timestamps, no host identifiers, so two runs of the same build produce
byte-identical manifests (CI diffs them against a checked-in baseline).

Build one after a run::

    result = run_point("KMN", "optimized", 4, params=SimParams(scope="1"))
    scope = recent_scopes()[-1]
    doc = build_manifest(result, scope.cluster, scope=scope)
    write_manifest("dex-run.json", doc)

or from the CLI: ``python -m repro.obs manifest --app KMN ...``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional

from repro.obs.metrics import Histogram

__all__ = [
    "MANIFEST_FORMAT",
    "build_manifest",
    "load_manifest",
    "write_manifest",
]

MANIFEST_FORMAT = "dex-run-v1"

#: quantile points recorded for every histogram section
_QUANTILES = (50, 90, 99, 99.9)


def _params_dict(params: Any) -> Dict[str, Any]:
    """Simple-typed SimParams fields only (knob objects like a chaos
    scenario or a contention model aren't JSON and aren't inputs a diff
    can meaningfully compare)."""
    out: Dict[str, Any] = {}
    for field in dataclasses.fields(params):
        value = getattr(params, field.name)
        if value is None or isinstance(value, (bool, int, float, str)):
            out[field.name] = value
    return out


def _hist_section(hist: Histogram) -> Dict[str, Any]:
    doc = hist.to_dict()
    doc["mean"] = hist.mean
    doc.update(hist.quantiles(*_QUANTILES))
    return doc


def _merge_into(target: Optional[Histogram], hist: Histogram) -> Histogram:
    if target is None:
        target = hist._make_child()
    return target.merge(hist)


def build_manifest(
    result: Any,
    cluster: Any,
    *,
    scope: Any = None,
    lens: Any = None,
    label: str = "",
) -> Dict[str, Any]:
    """Assemble the manifest document for one finished run.

    *result* is the app's :class:`~repro.apps.common.AppResult`; *cluster*
    the cluster it ran on (recoverable from ``scope.cluster`` when the
    telemetry was on).  *scope* adds the ``series`` section, *lens* the
    critical-path ``phases`` section; both are optional — a manifest
    without them still diffs on counters and latency quantiles.
    """
    params = cluster.params
    procs = list(cluster.processes.values())

    counters: Dict[str, float] = {}
    directory: Dict[str, int] = {}
    fault_all: Optional[Histogram] = None
    fault_by_mode: Dict[str, Histogram] = {}
    for proc in procs:
        reg = proc.stats.registry
        for name in reg.names():
            metric = reg.get(name)
            if metric.kind != "counter":
                continue
            counters[name] = counters.get(name, 0) + metric.total()
        for home, served in proc.stats.directory_requests.items():
            key = str(home)
            directory[key] = directory.get(key, 0) + served
        fault = proc.stats.fault_latency
        fault_all = _merge_into(fault_all, fault)
        for mode, child in fault.per_label().items():
            fault_by_mode[mode] = _merge_into(fault_by_mode.get(mode), child)

    net = cluster.net
    counters["net_messages_sent"] = net.messages_sent
    counters["net_page_payloads"] = net.page_payloads
    counters["net_loopback_deliveries"] = net.loopback_deliveries
    if cluster.chaos is not None:
        chaos_reg = cluster.chaos.metrics
        for name in chaos_reg.names():
            metric = chaos_reg.get(name)
            if metric.kind == "counter":
                counters[name] = counters.get(name, 0) + metric.total()

    doc: Dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "label": label or f"{result.app}-{result.variant}@{result.num_nodes}",
        "app": result.app,
        "variant": result.variant,
        "nodes": result.num_nodes,
        "threads": result.num_threads,
        "backend": params.directory,
        "seed": params.seed,
        "params": _params_dict(params),
        "result": {
            "elapsed_us": result.elapsed_us,
            "sim_time_us": cluster.engine.now,
            "events_dispatched": cluster.engine.events_dispatched,
            "correct": result.correct,
        },
        "counters": counters,
        "directory_requests": directory,
        "quantiles": {},
        "phases": {},
        "series": {},
    }

    if fault_all is not None:
        doc["quantiles"]["fault_latency_us"] = {
            "overall": _hist_section(fault_all),
            "by_mode": {
                mode: _hist_section(hist)
                for mode, hist in sorted(fault_by_mode.items())
            },
        }

    if lens is not None:
        per_phase: Dict[str, Histogram] = {}
        for (phase, _app, _mode), child in lens.feed.path_us.per_label().items():
            per_phase[phase] = _merge_into(per_phase.get(phase), child)
        doc["phases"] = {
            phase: _hist_section(hist)
            for phase, hist in sorted(per_phase.items())
        }
        doc["trees_completed"] = lens.feed.trees_completed

    if scope is not None:
        doc["series"] = scope.series_dict()
        doc["scope"] = {
            "interval_us": scope.interval_us,
            "samples": scope.samples,
            "series_dropped": scope.series_dropped,
        }

    return doc


def write_manifest(path: str, doc: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")


def load_manifest(path: str) -> Dict[str, Any]:
    """Load and validate a manifest; raises ``ValueError`` for files that
    aren't run manifests (wrong tool output, corrupted artifacts)."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{path!r} is not a run manifest (format={doc.get('format')!r})"
        )
    return doc
