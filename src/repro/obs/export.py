"""Span exporters and offline analysis: Chrome trace-event JSON (Perfetto),
terminal timeline/top-spans reports, per-phase time attribution, and the
span-tree validator used by tests and the CLI.

Offline tooling, plus the two shared phase vocabularies: ``PHASE_NAMES``
(the app-phase attribution categories) and :class:`PathPhase` (the
critical-path phases DexLens attributes latency to).  Both are the single
source of truth — DexVet's ``lens-sink-discipline`` rule rejects phase
labels spelled as string literals anywhere else.
"""

from __future__ import annotations

import enum
import json
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracing import Span

# -- span-tree structure ------------------------------------------------------


def span_index(spans: Sequence[Span]) -> Dict[int, Span]:
    return {s.span_id: s for s in spans}


def traces(spans: Sequence[Span]) -> Dict[int, List[Span]]:
    """Group spans by trace id."""
    by_trace: Dict[int, List[Span]] = defaultdict(list)
    for s in spans:
        by_trace[s.trace_id].append(s)
    return dict(by_trace)


class TreeReport:
    """Connectivity report for one trace: produced by :func:`check_trace_tree`."""

    def __init__(self, trace_id: int, spans: List[Span]):
        self.trace_id = trace_id
        self.spans = spans
        index = {s.span_id: s for s in spans}
        self.roots = [s for s in spans if s.parent_id is None]
        # broken links: a parent_id that is missing from the trace, or that
        # resolves to a span of a *different* trace (id not propagated)
        self.orphans = [
            s for s in spans
            if s.parent_id is not None and (
                s.parent_id not in index
                or index[s.parent_id].trace_id != s.trace_id
            )
        ]
        self.nodes = sorted({s.node for s in spans if s.node >= 0})

    @property
    def connected(self) -> bool:
        return len(self.roots) == 1 and not self.orphans

    def format(self) -> str:
        status = "OK" if self.connected else "BROKEN"
        detail = f"{len(self.spans)} spans, nodes {self.nodes}"
        if not self.connected:
            detail += f", {len(self.roots)} roots, {len(self.orphans)} orphans"
        return f"trace {self.trace_id}: {status} ({detail})"


def check_trace_tree(spans: Sequence[Span], trace_id: int) -> TreeReport:
    """Validate that the spans of *trace_id* form one connected tree."""
    members = [s for s in spans if s.trace_id == trace_id]
    # spans whose parent lives in another trace are members of the *broken*
    # tree too: pull in anything that claims trace_id via its own field only
    return TreeReport(trace_id, members)


def check_all_traces(spans: Sequence[Span]) -> List[TreeReport]:
    return [TreeReport(tid, members) for tid, members in sorted(traces(spans).items())]


def cross_node_traces(spans: Sequence[Span], min_nodes: int = 2) -> List[TreeReport]:
    """Connected traces whose spans touch at least *min_nodes* distinct nodes."""
    return [
        r for r in check_all_traces(spans)
        if r.connected and len(r.nodes) >= min_nodes
    ]


# -- per-phase attribution ----------------------------------------------------

# span-name prefix -> (phase, priority).  Higher priority wins when spans of
# the same thread overlap (a remote futex_wait is nested inside the waiter's
# delegation.call round-trip; the time is futex time, not delegation time).
_PHASES: Tuple[Tuple[str, str, int], ...] = (
    ("chaos.", "chaos", 6),
    ("futex.", "futex", 5),
    ("fault", "fault_wait", 4),
    ("migration.", "migration", 3),
    ("delegation.", "delegation", 2),
    ("compute", "compute", 1),
)

PHASE_NAMES: Tuple[str, ...] = (
    "compute", "fault_wait", "futex", "migration", "delegation", "chaos",
)


class PathPhase(enum.Enum):
    """Where the microseconds of one completed span tree went — the
    critical-path categories DexLens aggregates into histograms.  Every
    consumer must reference members of this enum (``PathPhase.WIRE``),
    never re-spell the labels as string literals: the DexVet
    ``lens-sink-discipline`` rule enforces it."""

    #: posting, pool acquisition, retry backoff, and the requester-side
    #: residual (trap cost, PTE updates) — time spent waiting in line
    QUEUE = "queue"
    #: link serialization + propagation + receive completion (net.wire)
    WIRE = "wire"
    #: remote service work: rx handlers and protocol decision making
    HANDLER = "handler"
    #: blocked on someone else's copy: revocation round-trips, follower
    #: waits behind a leader, futex waits
    BLOCKED = "blocked"
    #: the application's own cycles
    COMPUTE = "compute"


#: span-name prefix -> PathPhase, longest prefix first (first match wins)
_PATH_PHASES: Tuple[Tuple[str, PathPhase], ...] = (
    ("net.wire", PathPhase.WIRE),
    ("net.", PathPhase.QUEUE),
    ("rx.", PathPhase.HANDLER),
    ("protocol.revoke", PathPhase.BLOCKED),
    ("protocol.invalidate", PathPhase.BLOCKED),
    ("fault.follow", PathPhase.BLOCKED),
    ("futex.", PathPhase.BLOCKED),
    ("fault.acquire", PathPhase.QUEUE),
    # bare "fault" (after the specific fault.* entries above): requester-side
    # trap/PTE/backoff work
    ("fault", PathPhase.QUEUE),
    ("compute", PathPhase.COMPUTE),
)


def path_phase_of(name: str) -> PathPhase:
    """Critical-path phase for a span name; anything uncategorized is
    service work (HANDLER)."""
    for prefix, phase in _PATH_PHASES:
        if name.startswith(prefix):
            return phase
    return PathPhase.HANDLER


def phase_of(name: str) -> Optional[Tuple[str, int]]:
    for prefix, phase, prio in _PHASES:
        if name.startswith(prefix):
            return phase, prio
    return None


def attribution(spans: Sequence[Span]) -> Dict[int, Dict[str, float]]:
    """Per-thread wall-time attribution: ``{tid: {phase: us}}``.

    A priority sweep over each thread's categorized spans: at every instant
    the highest-priority open span owns the time, so nested/overlapping
    spans (futex inside delegation, fault inside compute) are not counted
    twice."""
    by_tid: Dict[int, List[Tuple[float, int, int]]] = defaultdict(list)
    for s in spans:
        if s.tid < 0 or s.end_us is None:
            continue
        cat = phase_of(s.name)
        if cat is None:
            continue
        _, prio = cat
        by_tid[s.tid].append((s.start_us, +1, prio))
        by_tid[s.tid].append((s.end_us, -1, prio))

    prio_to_phase = {prio: phase for _, phase, prio in _PHASES}
    out: Dict[int, Dict[str, float]] = {}
    for tid, events in by_tid.items():
        events.sort(key=lambda e: (e[0], e[1]))  # ends before starts at ties
        active = [0] * 8  # open-span count per priority level
        top = 0  # highest priority with active[p] > 0
        last_t = None
        totals: Dict[str, float] = {p: 0.0 for p in PHASE_NAMES}
        for t, delta, prio in events:
            if last_t is not None and top > 0 and t > last_t:
                totals[prio_to_phase[top]] += t - last_t
            active[prio] += delta
            top = max((p for p in range(1, 8) if active[p] > 0), default=0)
            last_t = t
        out[tid] = totals
    return out


def phase_totals(spans: Sequence[Span]) -> Dict[str, float]:
    totals: Dict[str, float] = {p: 0.0 for p in PHASE_NAMES}
    for per_phase in attribution(spans).values():
        for phase, us in per_phase.items():
            totals[phase] += us
    return totals


def render_attribution(spans: Sequence[Span]) -> str:
    per_tid = attribution(spans)
    lines = ["per-phase time attribution (us, per thread):"]
    header = f"  {'tid':>4}  " + "".join(f"{p:>12}" for p in PHASE_NAMES) + f"{'total':>12}"
    lines.append(header)
    for tid in sorted(per_tid):
        row = per_tid[tid]
        total = sum(row.values())
        lines.append(
            f"  {tid:>4}  "
            + "".join(f"{row[p]:>12.1f}" for p in PHASE_NAMES)
            + f"{total:>12.1f}"
        )
    totals = phase_totals(spans)
    lines.append(
        f"  {'all':>4}  "
        + "".join(f"{totals[p]:>12.1f}" for p in PHASE_NAMES)
        + f"{sum(totals.values()):>12.1f}"
    )
    return "\n".join(lines)


# -- terminal reports ---------------------------------------------------------


def render_top_spans(spans: Sequence[Span], top_n: int = 15) -> str:
    """Aggregate spans by name: count, total, mean, max."""
    agg: Dict[str, List[float]] = defaultdict(list)
    for s in spans:
        if s.end_us is not None:
            agg[s.name].append(s.duration_us)
    rows = sorted(agg.items(), key=lambda kv: -sum(kv[1]))[:top_n]
    lines = [
        f"top spans by total time ({len(spans)} spans, {len(agg)} kinds):",
        f"  {'name':<26}{'count':>8}{'total us':>14}{'mean us':>12}{'max us':>12}",
    ]
    for name, durs in rows:
        lines.append(
            f"  {name:<26}{len(durs):>8}{sum(durs):>14.1f}"
            f"{sum(durs) / len(durs):>12.2f}{max(durs):>12.2f}"
        )
    return "\n".join(lines)


def render_timeline(spans: Sequence[Span], limit: int = 40) -> str:
    """Indented textual timeline of the largest cross-node trace (or the
    largest trace overall when nothing crosses nodes)."""
    reports = cross_node_traces(spans) or check_all_traces(spans)
    if not reports:
        return "timeline: no spans"
    best = max(reports, key=lambda r: (len(r.nodes), len(r.spans)))
    members = sorted(best.spans, key=lambda s: (s.start_us, s.span_id))
    index = {s.span_id: s for s in members}

    def depth(s: Span) -> int:
        d = 0
        while s.parent_id is not None and s.parent_id in index:
            s = index[s.parent_id]
            d += 1
        return d

    lines = [f"timeline for {best.format()}"]
    for s in members[:limit]:
        pad = "  " * depth(s)
        lines.append(
            f"  {s.start_us:>10.1f}us {pad}{s.name} [{s.duration_us:.1f}us]"
            f" node={s.node}" + (f" tid={s.tid}" if s.tid >= 0 else "")
        )
    if len(members) > limit:
        lines.append(f"  ... {len(members) - limit} more spans")
    return "\n".join(lines)


# -- Chrome trace-event JSON (Perfetto) ---------------------------------------


def _allocate_lanes(spans: Sequence[Span], index: Dict[int, Span]) -> Dict[int, int]:
    """Chrome ``tid`` lane per span.  App-thread spans use their own tid;
    service spans (tid < 0) inherit their same-node ancestor's lane, else get
    a per-node lane >= 1000 allocated greedily so concurrent service work on
    one node lands on separate rows."""
    lanes: Dict[int, int] = {}
    # service roots: tid < 0 and no same-node parent to inherit from
    service_roots: List[Span] = []
    for s in spans:
        if s.tid >= 0:
            lanes[s.span_id] = s.tid
            continue
        parent = index.get(s.parent_id) if s.parent_id is not None else None
        if parent is None or parent.node != s.node:
            service_roots.append(s)

    free: Dict[int, List[Tuple[float, int]]] = defaultdict(list)  # node -> [(busy_until, lane)]
    for s in sorted(service_roots, key=lambda s: (s.start_us, s.span_id)):
        end = s.end_us if s.end_us is not None else s.start_us
        pool = free[s.node]
        for i, (busy_until, lane) in enumerate(pool):
            if busy_until <= s.start_us:
                pool[i] = (end, lane)
                lanes[s.span_id] = lane
                break
        else:
            lane = 1000 + len(pool)
            pool.append((end, lane))
            lanes[s.span_id] = lane

    # remaining service spans inherit lanes down the tree (same node)
    def lane_of(s: Span) -> int:
        got = lanes.get(s.span_id)
        if got is not None:
            return got
        parent = index.get(s.parent_id) if s.parent_id is not None else None
        if parent is not None and parent.node == s.node:
            lane = lane_of(parent)
        else:  # pragma: no cover - service roots already allocated
            lane = 1999
        lanes[s.span_id] = lane
        return lane

    for s in spans:
        lane_of(s)
    return lanes


def chrome_trace(
    spans: Sequence[Span],
    *,
    dropped: int = 0,
    counters: Optional[Sequence[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Build a Chrome trace-event JSON document (load at ui.perfetto.dev).

    One process track per node (pid = node id, ``tid`` lanes inside it: app
    threads on their tid rows, protocol/fabric service work on rows >= 1000),
    timestamps in simulated microseconds, and flow (s/f) arrows stitching
    parent→child edges that cross nodes.

    *counters* appends pre-built counter-track events (``"ph": "C"`` plus
    any metadata they need) after the slice events — the DexScope
    utilization series render as Perfetto counter tracks alongside the
    span timeline (see :meth:`repro.obs.scope.DexScope.counter_events`)."""
    index = span_index(spans)
    lanes = _allocate_lanes(spans, index)
    events: List[Dict[str, Any]] = []

    nodes = sorted({s.node for s in spans if s.node >= 0})
    for node in nodes:
        events.append({
            "name": "process_name", "ph": "M", "pid": node, "tid": 0,
            "args": {"name": f"node {node}"},
        })
        events.append({
            "name": "process_sort_index", "ph": "M", "pid": node, "tid": 0,
            "args": {"sort_index": node},
        })

    for s in spans:
        end = s.end_us if s.end_us is not None else s.start_us
        lane = lanes[s.span_id]
        args = {"trace": s.trace_id, "span": s.span_id}
        args.update(s.attrs)
        events.append({
            "name": s.name,
            "cat": phase_of(s.name)[0] if phase_of(s.name) else "protocol",
            "ph": "X",
            "pid": s.node if s.node >= 0 else (nodes[0] if nodes else 0),
            "tid": lane,
            "ts": s.start_us,
            "dur": max(end - s.start_us, 0.0),
            "args": args,
        })
        parent = index.get(s.parent_id) if s.parent_id is not None else None
        if parent is not None and parent.node != s.node:
            # flow arrow from inside the parent slice to the child's start
            parent_end = parent.end_us if parent.end_us is not None else parent.start_us
            ts_out = min(max(s.start_us, parent.start_us), parent_end)
            events.append({
                "name": "msg", "cat": "flow", "ph": "s", "id": s.span_id,
                "pid": parent.node, "tid": lanes[parent.span_id], "ts": ts_out,
            })
            events.append({
                "name": "msg", "cat": "flow", "ph": "f", "bp": "e", "id": s.span_id,
                "pid": s.node, "tid": lane, "ts": s.start_us,
            })

    other: Dict[str, Any] = {
        "source": "repro.obs (DexTrace)", "spans_dropped": dropped,
    }
    if counters:
        events.extend(counters)
        other["counter_events"] = len(counters)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str,
    spans: Sequence[Span],
    *,
    dropped: int = 0,
    counters: Optional[Sequence[Dict[str, Any]]] = None,
) -> int:
    doc = chrome_trace(spans, dropped=dropped, counters=counters)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
