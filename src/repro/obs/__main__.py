"""DexTrace command line: run traced simulations, report, and export.

Subcommands::

    python -m repro.obs run      --app kmeans --nodes 4 --out spans.json
    python -m repro.obs report   --input spans.json
    python -m repro.obs report   --app BFS --nodes 8
    python -m repro.obs export   --app kmeans --nodes 4 --out trace.json
    python -m repro.obs top      --app kmeans --nodes 4 --interval-us 10000
    python -m repro.obs manifest --app KMN --nodes 4 --out dex-run.json
    python -m repro.obs diff     baseline.json candidate.json --check

``run`` saves the raw span log (``dextrace-spans-v1`` JSON), ``report``
prints the terminal timeline / top-spans / per-phase attribution views,
``export`` writes Chrome trace-event JSON for ui.perfetto.dev (pass
``--scope`` to merge the DexScope utilization series in as Perfetto
counter tracks), and ``top`` runs with the DexLens analytics on,
rendering live frames (hottest pages, worst ping-pong pairs, p50/p99
critical-path breakdown) every ``--interval-us`` of *simulated* time
plus a final summary frame.

``manifest`` runs with DexScope + DexLens on and writes the versioned
run manifest (``dex-run-v1``: params, seed, counters, latency
quantiles, critical-path phase totals, downsampled utilization series);
``diff`` compares two manifests — ranked per-metric deltas, dominant
critical-path phase, hottest directory shard — and with ``--check``
exits nonzero on a thresholded headline regression (the CI trend
guard).  ``diff --bench BENCH_engine.json`` trend-checks the benchmark
trajectory instead.

``--app`` takes a Figure 2 short name (KMN, GRP, BT, EP, FT, BLK, BFS,
BP), a long alias (``kmeans``, ``blackscholes``, ...), or ``pagefault`` —
a built-in 2-node atomic-add ping-pong microbenchmark (§V-D) that needs
no application workload.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import tracing
from repro.obs.export import (
    check_all_traces,
    cross_node_traces,
    phase_totals,
    render_attribution,
    render_timeline,
    render_top_spans,
    write_chrome_trace,
)
from repro.obs.tracing import Span, load_spans

#: long-form aliases for the Figure 2 short names
_ALIASES: Dict[str, str] = {
    "string_match": "GRP", "string-match": "GRP", "grep": "GRP",
    "kmeans": "KMN",
    "blackscholes": "BLK",
    "bfs": "BFS",
    "bp": "BP",
    "bt": "BT", "ep": "EP", "ft": "FT",
}


def _resolve_app(name: str) -> str:
    return _ALIASES.get(name.lower(), name.upper())


def _parse_value(text: str) -> Any:
    """``--app-arg`` values: literal where possible, string otherwise."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--app-arg expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        out[key] = _parse_value(value)
    return out


def _sim_params(ns: argparse.Namespace):
    """Traced SimParams for a CLI run; the ``top`` subcommand adds the
    lens knobs on top."""
    from repro.params import SimParams

    kwargs: Dict[str, Any] = {"trace": "1", "directory": ns.directory}
    if getattr(ns, "lens", False):
        kwargs["lens"] = "1"
        if hasattr(ns, "window_us"):
            kwargs["lens_window_us"] = ns.window_us
    if getattr(ns, "scope", False):
        kwargs["scope"] = "1"
    return SimParams(**kwargs)


def _run_pagefault(ns: argparse.Namespace):
    """The §V-D microbenchmark: two threads on two nodes ping-ponging one
    atomic counter.  Built here (not via repro.bench.experiments) so the
    CLI holds the cluster and can read its tracer directly."""
    from repro.core import DexCluster
    from repro.runtime import MemoryAllocator

    params = _sim_params(ns)
    cluster = DexCluster(num_nodes=2, params=params)
    proc = cluster.create_process()
    alloc = MemoryAllocator(proc)
    var = alloc.alloc_global(8, tag="shared_var")
    duration = ns.duration_us

    def hammer(ctx, dest):
        count = 0
        if dest is not None:
            yield from ctx.migrate(dest)
        while ctx.now < duration:
            yield from ctx.atomic_add_i64(var, 1, site="hammer")
            yield from ctx.compute(cpu_us=0.1)
            count += 1
        return count

    t1 = proc.spawn_thread(hammer, None)
    t2 = proc.spawn_thread(hammer, 1)

    def main(ctx):
        yield from proc.join_all([t1, t2])

    cluster.simulate(main, proc)
    tracer = cluster.tracer
    assert tracer is not None
    return tracer, proc.stats, f"pagefault micro ({duration:.0f}us)"


def _run_app(ns: argparse.Namespace):
    """One traced application run; recovers the tracer the app's internal
    DexCluster created."""
    from repro.bench.runner import run_point

    app = _resolve_app(ns.app)
    params = _sim_params(ns)
    tracing.reset_recent()
    result = run_point(
        app, ns.variant, ns.nodes, ns.scale,
        params=params, **_overrides(ns.app_arg),
    )
    tracers = tracing.recent_tracers()
    if not tracers:
        raise SystemExit(f"{app}: run produced no tracer (tracing disabled?)")
    tracer = max(tracers, key=lambda t: len(t.spans))
    label = (
        f"{app} {ns.variant} nodes={ns.nodes} scale={ns.scale}"
        f" elapsed={result.elapsed_us:.0f}us correct={result.correct}"
    )
    return tracer, result.stats, label


def _run_traced(ns: argparse.Namespace):
    if _resolve_app(ns.app) == "PAGEFAULT":
        return _run_pagefault(ns)
    return _run_app(ns)


def _load_or_run(ns: argparse.Namespace) -> Tuple[List[Span], int, Any, str]:
    """(spans, dropped, stats-or-None, label) from --input or a fresh run."""
    if ns.input:
        spans, meta = load_spans(ns.input)
        return spans, int(meta.get("dropped", 0)), None, ns.input
    tracer, stats, label = _run_traced(ns)
    return tracer.spans, tracer.dropped, stats, label


# -- acceptance-style checks printed by report/export --------------------------


def _fault_tree_line(spans: Sequence[Span]) -> str:
    """The ISSUE acceptance check: one *connected* contended-write-fault
    tree crossing >= 3 nodes (requester -> home -> revoked victim)."""
    candidates = [
        r for r in cross_node_traces(spans, min_nodes=3)
        if any(s.name == "rx.page_invalidate" for s in r.spans)
        and any(s.name == "fault" and s.attrs.get("write") for s in r.spans)
    ]
    if candidates:
        best = max(candidates, key=lambda r: len(r.nodes))
        return f"contended write-fault tree: {best.format()}"
    connected = [r for r in check_all_traces(spans) if r.connected]
    widest = max((len(r.nodes) for r in connected), default=0)
    return (
        "contended write-fault tree: none crossing >=3 nodes "
        f"(widest connected trace touches {widest} node(s) — expected for "
        "<3-node runs or uncontended workloads)"
    )


def _migration_agreement_line(spans: Sequence[Span], stats) -> Optional[str]:
    """Attributed migration time must agree with the MigrationRecord log
    (Table II ground truth) within 1%."""
    if stats is None or not stats.migrations:
        return None
    expected = sum(r.total_us for r in stats.migrations)
    attributed = phase_totals(spans)["migration"]
    if expected <= 0:
        return None
    err = abs(attributed - expected) / expected
    status = "OK" if err <= 0.01 else "MISMATCH"
    return (
        f"migration attribution: {status} ({attributed:.1f}us attributed vs "
        f"{expected:.1f}us in {len(stats.migrations)} migration records, "
        f"err {err * 100:.2f}%)"
    )


def _summary(spans: Sequence[Span], dropped: int, label: str) -> str:
    line = f"{label}: {len(spans)} spans"
    if dropped:
        line += f" (INCOMPLETE: {dropped} spans dropped past max_spans)"
    return line


# -- subcommands ---------------------------------------------------------------


def cmd_run(ns: argparse.Namespace) -> int:
    tracer, stats, label = _run_traced(ns)
    out = ns.out or "dex-spans.json"
    tracer.save_json(out)
    print(_summary(tracer.spans, tracer.dropped, label))
    print(f"wrote span log to {out}")
    return 0


def cmd_report(ns: argparse.Namespace) -> int:
    spans, dropped, stats, label = _load_or_run(ns)
    print(_summary(spans, dropped, label))
    print()
    print(render_timeline(spans, limit=ns.limit))
    print()
    print(render_top_spans(spans))
    print()
    print(render_attribution(spans))
    print()
    print(_fault_tree_line(spans))
    agreement = _migration_agreement_line(spans, stats)
    if agreement:
        print(agreement)
    return 0


def cmd_export(ns: argparse.Namespace) -> int:
    from repro.obs import scope as scope_mod

    scope_mod.reset_recent()
    spans, dropped, stats, label = _load_or_run(ns)
    counters = None
    scopes = scope_mod.recent_scopes()
    if scopes:
        # --scope run: merge the utilization series as counter tracks
        counters = max(scopes, key=lambda s: s.samples).counter_events()
    out = ns.out or "dextrace.json"
    count = write_chrome_trace(out, spans, dropped=dropped, counters=counters)
    print(_summary(spans, dropped, label))
    print(f"wrote {count} trace events to {out} (open at ui.perfetto.dev)")
    if counters:
        print(f"merged {len(counters)} DexScope counter-track events")
    print(_fault_tree_line(spans))
    agreement = _migration_agreement_line(spans, stats)
    if agreement:
        print(agreement)
    return 0


def cmd_manifest(ns: argparse.Namespace) -> int:
    """One run with DexScope (and by default DexLens) on, captured as the
    versioned ``dex-run-v1`` manifest that ``diff`` compares."""
    from repro.bench.runner import run_point
    from repro.obs import lens as lens_mod
    from repro.obs import scope as scope_mod
    from repro.obs.manifest import build_manifest, write_manifest

    app = _resolve_app(ns.app)
    if app == "PAGEFAULT":
        raise SystemExit("manifest captures application runs; pick a "
                         "Figure 2 app (KMN, GRP, ...)")
    params = _sim_params(ns)
    tracing.reset_recent()
    lens_mod.reset_recent()
    scope_mod.reset_recent()
    result = run_point(
        app, ns.variant, ns.nodes, ns.scale,
        params=params, **_overrides(ns.app_arg),
    )
    scopes = scope_mod.recent_scopes()
    if not scopes:
        raise SystemExit(f"{app}: run produced no scope (DexScope disabled?)")
    scope = max(scopes, key=lambda s: s.samples)
    lenses = [l for l in lens_mod.recent_lenses() if l.cluster is scope.cluster]
    doc = build_manifest(
        result, scope.cluster,
        scope=scope, lens=lenses[-1] if lenses else None,
        label=ns.label,
    )
    out = ns.out or "dex-run.json"
    write_manifest(out, doc)
    print(
        f"wrote {out}: {doc['label']} "
        f"(sim {doc['result']['sim_time_us']:.0f}us, "
        f"{len(doc['series'])} series, {len(doc['counters'])} counters, "
        f"correct={doc['result']['correct']})"
    )
    return 0


def cmd_diff(ns: argparse.Namespace) -> int:
    """Compare two manifests (or trend-check a bench trajectory)."""
    from repro.obs.diff import diff_manifests, diff_trajectory, format_report
    from repro.obs.manifest import load_manifest

    if ns.bench:
        with open(ns.bench) as fh:
            doc = json.load(fh)
        threshold = ns.threshold if ns.threshold is not None else 0.25
        regressed, msg = diff_trajectory(doc, threshold=threshold)
        print(msg)
        return 1 if (regressed and ns.check) else 0
    if not ns.a or not ns.b:
        raise SystemExit("diff needs two manifest paths (or --bench FILE)")
    threshold = ns.threshold if ns.threshold is not None else 0.10
    report = diff_manifests(
        load_manifest(ns.a), load_manifest(ns.b), threshold=threshold
    )
    print(format_report(report, limit=ns.limit))
    return 1 if (ns.check and report.regressed) else 0


def cmd_top(ns: argparse.Namespace) -> int:
    """Run with DexLens on and a live terminal view attached: frames print
    as *simulated* time crosses each --interval-us boundary (rendered from
    span-close callbacks — nothing is scheduled on the engine), then a
    final end-of-run summary frame."""
    from repro.obs import lens as lens_mod

    lens_mod.reset_recent()
    with lens_mod.live_view(
        interval_us=ns.interval_us, limit=ns.limit, stream=sys.stdout
    ):
        tracer, stats, label = _run_traced(ns)
    lenses = lens_mod.recent_lenses()
    if not lenses:
        raise SystemExit("run produced no lens (lens disabled?)")
    lens = max(lenses, key=lambda l: l.feed.trees_completed)
    print()
    print(_summary(tracer.spans, tracer.dropped, label))
    view = lens.view
    if view is None:  # pragma: no cover - live_view always attaches one
        view = lens_mod.TopView(
            lens.feed, interval_us=ns.interval_us, limit=ns.limit,
            stream=sys.stdout,
        )
        view.render()
    else:
        view.render()  # final frame at end-of-run state
    evicted = {k: v for k, v in lens.feed.evicted.items() if v}
    if evicted:
        print(f"note: memory cap evicted keys: {evicted} (raise lens_max_keys)")
    return 0


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--app", default="kmeans",
                   help="app short name, alias, or 'pagefault' (default kmeans)")
    p.add_argument("--variant", default="initial",
                   choices=("unmodified", "initial", "optimized"))
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--scale", default="small", choices=("small", "paper"))
    p.add_argument("--directory", default="origin",
                   choices=("origin", "sharded"),
                   help="coherence-directory backend")
    p.add_argument("--duration-us", type=float, default=20_000.0,
                   help="pagefault micro duration (ignored for apps)")
    p.add_argument("--app-arg", action="append", default=[],
                   metavar="KEY=VALUE", help="workload override (repeatable)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="DexTrace: run traced simulations, report, export.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run traced, save the raw span log")
    _add_workload_args(p_run)
    p_run.add_argument("--out", help="span-log path (default dex-spans.json)")
    p_run.set_defaults(fn=cmd_run)

    p_report = sub.add_parser("report", help="terminal timeline/attribution")
    _add_workload_args(p_report)
    p_report.add_argument("--input", help="saved span log instead of a run")
    p_report.add_argument("--limit", type=int, default=40,
                          help="timeline rows (default 40)")
    p_report.set_defaults(fn=cmd_report)

    p_export = sub.add_parser("export", help="Chrome trace JSON for Perfetto")
    _add_workload_args(p_export)
    p_export.add_argument("--input", help="saved span log instead of a run")
    p_export.add_argument("--out", help="output path (default dextrace.json)")
    p_export.add_argument("--scope", action="store_true",
                          help="sample with DexScope and merge the series "
                          "as Perfetto counter tracks")
    p_export.set_defaults(fn=cmd_export)

    p_manifest = sub.add_parser(
        "manifest", help="run with DexScope+DexLens, write dex-run.json"
    )
    _add_workload_args(p_manifest)
    p_manifest.add_argument("--out", help="manifest path (default dex-run.json)")
    p_manifest.add_argument("--label", default="",
                            help="label recorded in the manifest")
    p_manifest.add_argument("--no-lens", dest="lens", action="store_false",
                            help="skip the critical-path phase section")
    p_manifest.set_defaults(fn=cmd_manifest, lens=True, scope=True)

    p_diff = sub.add_parser(
        "diff", help="compare two run manifests; --check for CI guarding"
    )
    p_diff.add_argument("a", nargs="?", help="baseline manifest")
    p_diff.add_argument("b", nargs="?", help="candidate manifest")
    p_diff.add_argument("--bench",
                        help="trend-check a BENCH_*.json trajectory instead")
    p_diff.add_argument("--threshold", type=float, default=None,
                        help="relative regression threshold "
                        "(default 0.10 for manifests, 0.25 for --bench)")
    p_diff.add_argument("--limit", type=int, default=20,
                        help="ranked delta rows shown (default 20)")
    p_diff.add_argument("--check", action="store_true",
                        help="exit nonzero when a headline metric regressed")
    p_diff.set_defaults(fn=cmd_diff)

    p_top = sub.add_parser("top", help="live DexLens view (hot pages, "
                           "ping-pong pairs, critical-path p50/p99)")
    _add_workload_args(p_top)
    p_top.add_argument("--interval-us", type=float, default=10_000.0,
                       help="sim-time between live frames (default 10000)")
    p_top.add_argument("--limit", type=int, default=8,
                       help="rows per table (default 8)")
    p_top.add_argument("--window-us", type=float, default=5_000.0,
                       help="heat-stat sliding window (default 5000)")
    p_top.set_defaults(fn=cmd_top, lens=True)

    ns = parser.parse_args(argv)
    return ns.fn(ns)


if __name__ == "__main__":
    sys.exit(main())
