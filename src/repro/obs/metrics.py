"""Typed metrics: counters, gauges, and log-bucketed histograms.

``DexStats`` (``repro.core.stats``) is a facade over a
:class:`MetricsRegistry`; subsystems can also register their own metrics
(e.g. the fabric's per-message-type counters).  Everything here is plain
arithmetic on Python ints/floats — no wall clocks, no I/O — so it is safe
to use from simulation code.

Design notes
------------
* A metric with ``labelnames`` acts as a *family*: ``labels(node=3)``
  returns (creating on first use) the child metric for that label value.
  Children are ordinary metrics; families aggregate over them on demand.
* :class:`Histogram` uses geometric (log-scale) buckets so a fixed, small
  amount of state covers the full dynamic range of fault latencies (sub-µs
  RDMA legs up to multi-ms contended faults).  ``sum``/``count``/``min``/
  ``max`` are exact; percentiles are approximate (bucket-resolution).
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class _LabeledMixin:
    """Shared family/child machinery for all metric kinds."""

    name: str
    help: str
    labelnames: Tuple[str, ...]

    def _init_labels(self, labelnames: Sequence[str]) -> None:
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[Any, ...], Any] = {}

    def labels(self, **labelvalues: Any):
        """Child metric for the given label values (created on first use)."""
        if not self.labelnames:
            raise ValueError(f"metric {self.name!r} has no labels")
        try:
            key = tuple(labelvalues[n] for n in self.labelnames)
        except KeyError as missing:
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}"
            ) from missing
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def per_label(self) -> Dict[Any, Any]:
        """``{label value(s): child}`` — single-label families key by the
        bare value, multi-label families by the value tuple."""
        if len(self.labelnames) == 1:
            return {key[0]: child for key, child in self._children.items()}
        return dict(self._children)

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_LabeledMixin):
    """A monotonically-increasing count (resettable for facade use)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.value = 0
        self._init_labels(labelnames)

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def total(self):
        """Own value plus all children (families count through labels)."""
        return self.value + sum(c.value for c in self._children.values())

    def value_by_label(self) -> Dict[Any, Any]:
        return {key: child.value for key, child in self.per_label().items()}

    def snapshot(self) -> Any:
        if self._children:
            return {"total": self.total(), "by_label": self.value_by_label()}
        return self.value


class Gauge(_LabeledMixin):
    """A value that can go up and down (queue depths, copyset sizes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.value = 0
        self._init_labels(labelnames)

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def value_by_label(self) -> Dict[Any, Any]:
        return {key: child.value for key, child in self.per_label().items()}

    def snapshot(self) -> Any:
        if self._children:
            return {"value": self.value, "by_label": self.value_by_label()}
        return self.value


class Histogram(_LabeledMixin):
    """Geometric-bucket histogram.

    Bucket ``i`` (0-based) holds observations ``v`` with
    ``bounds[i-1] < v <= bounds[i]`` where ``bounds[i] = start * factor**i``;
    one extra overflow bucket catches everything above the last bound.
    Non-positive observations land in bucket 0.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        *,
        start: float = 0.25,
        factor: float = 2.0 ** 0.5,
        nbuckets: int = 64,
        labelnames: Sequence[str] = (),
    ):
        if start <= 0 or factor <= 1 or nbuckets < 1:
            raise ValueError("histogram needs start > 0, factor > 1, nbuckets >= 1")
        self.name = name
        self.help = help
        self.start = start
        self.factor = factor
        self.bounds: List[float] = [start * factor ** i for i in range(nbuckets)]
        self.counts: List[int] = [0] * (nbuckets + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._init_labels(labelnames)

    def _make_child(self) -> "Histogram":
        return Histogram(
            self.name,
            self.help,
            start=self.start,
            factor=self.factor,
            nbuckets=len(self.bounds),
        )

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _merged(self) -> "Histogram":
        """Aggregate of self plus all labeled children."""
        if not self._children:
            return self
        merged = self._make_child()
        for hist in (self, *self._children.values()):
            for i, n in enumerate(hist.counts):
                merged.counts[i] += n
            merged.count += hist.count
            merged.sum += hist.sum
            merged.min = min(merged.min, hist.min)
            merged.max = max(merged.max, hist.max)
        return merged

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (0 <= p <= 100) from the buckets,
        linearly interpolated inside the covering bucket and clamped to the
        exact observed ``[min, max]``."""
        hist = self._merged()
        if hist.count == 0:
            return 0.0
        rank = max(1.0, math.ceil(p / 100.0 * hist.count))
        seen = 0
        for i, n in enumerate(hist.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = 0.0 if i == 0 else hist.bounds[i - 1]
                hi = hist.bounds[i] if i < len(hist.bounds) else hist.max
                frac = (rank - seen) / n
                est = lo + (hi - lo) * frac
                return min(max(est, hist.min), hist.max)
            seen += n
        return hist.max

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other*'s samples into this histogram, in place.

        Requires identical bucket geometry (start/factor/bucket count).
        Merging an empty operand is a no-op either way round: the empty
        side's ``min=+inf`` / ``max=-inf`` sentinels lose every min/max
        comparison, so they never leak into the merged extrema."""
        if (
            other.start != self.start
            or other.factor != self.factor
            or len(other.bounds) != len(self.bounds)
        ):
            raise ValueError(
                f"cannot merge histogram {other.name!r} "
                f"(start={other.start}, factor={other.factor}, "
                f"nbuckets={len(other.bounds)}) into {self.name!r} "
                f"(start={self.start}, factor={self.factor}, "
                f"nbuckets={len(self.bounds)})"
            )
        src = other._merged()
        for i, n in enumerate(src.counts):
            self.counts[i] += n
        self.count += src.count
        self.sum += src.sum
        if src.min < self.min:
            self.min = src.min
        if src.max > self.max:
            self.max = src.max
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable state (labeled children folded in).

        The empty histogram's ``min=+inf`` / ``max=-inf`` sentinels are
        not JSON-representable; they serialize as ``None`` and
        :meth:`from_dict` restores the sentinels, so an empty histogram
        round-trips to one that still merges and ranks correctly."""
        hist = self._merged()
        return {
            "name": self.name,
            "start": self.start,
            "factor": self.factor,
            "nbuckets": len(self.bounds),
            "counts": list(hist.counts),
            "count": hist.count,
            "sum": hist.sum,
            "min": hist.min if hist.count else None,
            "max": hist.max if hist.count else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        """Inverse of :meth:`to_dict`; validates bucket geometry."""
        nbuckets = int(data["nbuckets"])
        hist = cls(
            data.get("name", "histogram"),
            start=data["start"],
            factor=data["factor"],
            nbuckets=nbuckets,
        )
        counts = list(data["counts"])
        if len(counts) != nbuckets + 1:
            raise ValueError(
                f"histogram {hist.name!r}: expected {nbuckets + 1} bucket "
                f"counts (nbuckets + overflow), got {len(counts)}"
            )
        hist.counts = [int(n) for n in counts]
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        hist.min = math.inf if data["min"] is None else float(data["min"])
        hist.max = -math.inf if data["max"] is None else float(data["max"])
        return hist

    def quantiles(self, *ps: float) -> Dict[str, float]:
        """Bucket-resolution quantile estimates for several points in one
        call (one merge), keyed ``"p50"``/``"p99"``/``"p999"``-style: the
        label is ``p`` followed by the percentile with any fraction's
        digits appended (99.9 -> ``p999``)."""
        hist = self._merged()
        out: Dict[str, float] = {}
        for p in ps:
            label = f"p{p:g}".replace(".", "")
            out[label] = hist.percentile(p)
        return out

    def snapshot(self) -> Dict[str, Any]:
        hist = self._merged()
        return {
            "count": hist.count,
            "sum": hist.sum,
            "mean": hist.mean,
            "min": hist.min if hist.count else None,
            "max": hist.max if hist.count else None,
            **hist.quantiles(50, 90, 99, 99.9),
        }


_METRIC_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics with a single snapshot/report path.

    Registration is idempotent: asking for an existing name returns the
    existing metric (so library code can self-register without coordination),
    but re-registering under a different kind is an error.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _register(self, cls, name: str, help: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        start: float = 0.25,
        factor: float = 2.0 ** 0.5,
        nbuckets: int = 64,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._register(
            Histogram, name, help,
            start=start, factor=factor, nbuckets=nbuckets, labelnames=labelnames,
        )

    def get(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> Iterable[str]:
        return self._metrics.keys()

    def snapshot(self) -> Dict[str, Any]:
        return {name: metric.snapshot() for name, metric in self._metrics.items()}

    def report(self, *, skip_zero: bool = True) -> str:
        """Human-readable text dump, one metric per line (histograms get a
        count/mean/percentile summary line)."""
        lines = []
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                if skip_zero and snap["count"] == 0:
                    continue
                lines.append(
                    f"{name:<34} count={snap['count']:<9} mean={snap['mean']:.2f}"
                    f" p50={snap['p50']:.2f} p99={snap['p99']:.2f}"
                    f" p999={snap['p999']:.2f} max={snap['max']:.2f}"
                )
            elif isinstance(metric, Counter) and metric._children:
                total = metric.total()
                if skip_zero and total == 0:
                    continue
                parts = " ".join(
                    f"{key}={val}" for key, val in sorted(
                        metric.value_by_label().items(), key=lambda kv: str(kv[0])
                    )
                )
                lines.append(f"{name:<34} {total} ({parts})")
            else:
                if skip_zero and not metric.value:
                    continue
                lines.append(f"{name:<34} {metric.value}")
        return "\n".join(lines)
