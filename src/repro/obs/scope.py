"""DexScope: deterministic sim-time utilization sampling.

The scope is the time-series telemetry layer: where DexTrace answers
"what happened on this request" and DexLens "what is hot right now",
the scope answers "how loaded was each part of the rack *over time*" —
the signal the adaptation recipe of §IV (and the planned online
balancer / DexServe SLO reporting) needs.

A :class:`DexScope` registers one sampler on the engine's sampling grid
(:meth:`repro.sim.engine.Engine.add_sampler`): every
``scope_interval_us`` of simulated time it reads

* per-node CPU busy fraction and run-queue depth (the cores
  :class:`~repro.sim.resources.Resource`), and live thread residency
  (:func:`repro.core.thread.threads_by_node`);
* per-NIC transmit utilization and per-link occupancy / mean queueing
  delay (fed by :meth:`note_wire` from the fabric's wire path);
* per-shard directory request rates
  (:meth:`repro.core.directory.CoherenceDirectory.requests_by_home`);
* retry/chaos in-flight request counts
  (:func:`repro.net.retry.inflight_requests`) and retransmissions;
* the engine's own queue length and scheduling rate; and
* a snapshot of every process :class:`MetricsRegistry` counter.

Samples land in bounded :class:`~repro.obs.ring.SeriesRing` time series
(fixed memory, pairwise decay) and in a scope-owned
:class:`MetricsRegistry` of gauge families — the registry is the
single registration path the ``metric-discipline`` vet rule enforces.

Everything here is **read-only** over the model: the sampler fires
between dispatches, schedules nothing, and draws no randomness, so a
sampled run is bit-identical to an unsampled one (asserted by
``tests/test_obs_scope.py``).  When the scope is off
(``SimParams.scope=""`` / ``DEX_SCOPE`` unset) no object exists: the
engine compares one float against ``+inf`` per dispatch and the fabric
guards on ``net.scope is None``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.ring import SeriesRing

__all__ = ["DexScope", "recent_scopes", "reset_recent"]

#: synthetic Perfetto process id for series not owned by a single node
CLUSTER_PID = 9999

#: offline CLI bookkeeping, mirrors tracing._RECENT / lens._RECENT: apps
#: build their clusters internally, so the CLI recovers the scope here
_RECENT: List["DexScope"] = []


def reset_recent() -> None:
    _RECENT.clear()


def recent_scopes() -> List["DexScope"]:
    return list(_RECENT)


class DexScope:
    """Periodic utilization sampler for one cluster (see module doc)."""

    def __init__(self, cluster: Any):
        params = cluster.params
        self.cluster = cluster
        self.interval_us = float(params.scope_interval_us)
        self.capacity = int(params.scope_series_points)
        self.max_series = int(params.scope_max_series)
        self.samples = 0
        #: series not created because the key cap was hit (never silent)
        self.series_dropped = 0
        self.series: Dict[str, SeriesRing] = {}
        self._series_pid: Dict[str, int] = {}
        #: cumulative readings at the previous sample, for rate deltas
        self._last: Dict[str, float] = {}
        self._last_t = 0.0
        #: per-link [msgs, measured wire us, ideal serialization us]
        #: accumulated by the fabric between samples (see note_wire)
        self._wire_wait: Dict[Tuple[int, int], List[float]] = {}
        self._link_bw = float(params.link_bandwidth)

        reg = self.registry = MetricsRegistry()
        self.node_busy = reg.gauge(
            "node_busy_frac", "CPU cores in use / capacity, per node",
            labelnames=("node",))
        self.node_runq = reg.gauge(
            "node_runq_depth", "threads queued for a core, per node",
            labelnames=("node",))
        self.node_threads = reg.gauge(
            "node_threads", "live app threads resident, per node",
            labelnames=("node",))
        self.nic_tx_util = reg.gauge(
            "nic_tx_util", "transmit bandwidth utilization, per NIC",
            labelnames=("node",))
        self.link_occupancy = reg.gauge(
            "link_occupancy", "wire-bytes rate / bandwidth, per link",
            labelnames=("link",))
        self.link_queue = reg.gauge(
            "link_queue_us",
            "mean per-message wire queueing delay beyond serialization",
            labelnames=("link",))
        self.dir_rate = reg.gauge(
            "directory_request_rate",
            "ownership requests served per ms, by hosting shard",
            labelnames=("home",))
        self.retry_inflight = reg.gauge(
            "retry_inflight", "reliable requests awaiting a reply")
        self.engine_queue = reg.gauge(
            "engine_queue_len", "pending entries in the event queue")

        #: DexServe feed (a ServeManager), or None when no serving run is
        #: attached — the common case costs one None check per sample
        self._serve: Any = None
        #: Perfetto track names for serve-owned pids (metadata emission)
        self._serve_tracks: Dict[int, str] = {}

        cluster.engine.add_sampler(self.on_sample, self.interval_us)
        cluster.net.scope = self
        _RECENT.append(self)

    def attach_serve(self, feed: Any) -> None:
        """Register a DexServe manager: its :meth:`scope_series` is read
        on every sample and its tenants get their own Perfetto tracks."""
        self._serve = feed

    # -- fabric feed --------------------------------------------------------

    def note_wire(self, conn: Any, wire_bytes: int, wait_us: float) -> None:
        """Called by the fabric (scope on only) after a message serialized
        onto its link: *wait_us* is the measured fair-share service time;
        the ideal (uncontended) serialization time is accumulated alongside
        so the sampler can report the queueing excess."""
        acc = self._wire_wait.get((conn.src, conn.dst))
        if acc is None:
            acc = self._wire_wait[(conn.src, conn.dst)] = [0.0, 0.0, 0.0]
        acc[0] += 1.0
        acc[1] += wait_us
        acc[2] += wire_bytes / self._link_bw

    # -- the sampler ---------------------------------------------------------

    def _push(self, key: str, t: float, value: float, agg: str,
              pid: int = CLUSTER_PID) -> None:
        ring = self.series.get(key)
        if ring is None:
            if len(self.series) >= self.max_series:
                self.series_dropped += 1
                return
            ring = self.series[key] = SeriesRing(self.capacity, agg=agg)
            self._series_pid[key] = pid
        ring.push(t, value)

    def on_sample(self, t: float) -> None:
        """One grid firing (engine sampler hook).  Strictly read-only."""
        cluster = self.cluster
        push = self._push
        last = self._last
        dt = t - self._last_t if self.samples else self.interval_us
        if dt <= 0.0:
            dt = self.interval_us
        self._last_t = t
        self.samples += 1

        # per-node cores: busy fraction + run-queue depth
        for node in cluster.nodes:
            n = node.node_id
            cores = node.cores
            busy = cores.in_use / cores.capacity
            runq = float(cores.queued)
            self.node_busy.labels(node=n).set(busy)
            self.node_runq.labels(node=n).set(runq)
            push(f"node{n}.busy_frac", t, busy, "mean", n)
            push(f"node{n}.runq", t, runq, "mean", n)

        # live thread residency (compute-follows-data placement signal)
        from repro.core.thread import threads_by_node

        residency: Dict[int, int] = {}
        for proc in cluster.processes.values():
            for n, count in threads_by_node(proc).items():
                residency[n] = residency.get(n, 0) + count
        for n, count in residency.items():
            self.node_threads.labels(node=n).set(count)
            push(f"node{n}.threads", t, float(count), "mean", n)

        # per-NIC transmit utilization (served-bytes delta over capacity)
        for nic in cluster.net.nics:
            served = nic.tx.total_served
            key = f"nic{nic.node_id}.tx_util"
            if served or key in self.series:
                util = (served - last.get(key, 0.0)) / (nic.tx.capacity * dt)
                last[key] = served
                self.nic_tx_util.labels(node=nic.node_id).set(util)
                push(key, t, util, "mean", nic.node_id)

        # per-link occupancy (bytes-on-wire delta over capacity)
        for (src, dst), conn in cluster.net.connections.items():
            key = f"link{src}->{dst}.occupancy"
            if conn.bytes_on_wire or key in self.series:
                occ = (conn.bytes_on_wire - last.get(key, 0.0)) / (
                    self._link_bw * dt)
                last[key] = conn.bytes_on_wire
                self.link_occupancy.labels(link=f"{src}->{dst}").set(occ)
                push(key, t, occ, "mean", src)

        # per-link queueing delay (measured wire wait minus ideal
        # serialization, per message, over the elapsed interval)
        for (src, dst), acc in self._wire_wait.items():
            msgs, wait_us, ideal_us = acc
            if msgs:
                excess = max(wait_us - ideal_us, 0.0) / msgs
                acc[0] = acc[1] = acc[2] = 0.0
            else:
                excess = 0.0
            self.link_queue.labels(link=f"{src}->{dst}").set(excess)
            push(f"link{src}->{dst}.queue_us", t, excess, "mean", src)

        # per-shard directory request rate
        for proc in cluster.processes.values():
            for home, served in (
                proc.protocol.directory.requests_by_home().items()
            ):
                key = f"dir.home{home}.req_per_ms"
                rate = (served - last.get(key, 0.0)) * 1000.0 / dt
                last[key] = served
                self.dir_rate.labels(home=home).set(rate)
                push(key, t, rate, "mean", home)

        # retry/chaos in-flight accounting
        chaos = cluster.chaos
        if chaos is not None:
            from repro.net.retry import inflight_requests

            inflight = float(inflight_requests(chaos))
            self.retry_inflight.set(inflight)
            push("retry.inflight", t, inflight, "mean")
            retx = chaos.retransmissions.value
            if retx or "chaos.retransmits" in self.series:
                push("chaos.retransmits", t, float(retx), "last")

        # engine health: queue length + scheduling rate
        engine = cluster.engine
        depth = float(len(engine._queue) + len(engine._fastlane))
        self.engine_queue.set(depth)
        push("engine.queue_len", t, depth, "mean")
        seq = float(engine._seq)
        push("engine.sched_per_us", t, (seq - last.get("seq", 0.0)) / dt,
             "mean")
        last["seq"] = seq

        # MetricsRegistry snapshot: every nonzero process counter, as a
        # cumulative series (agg="last" keeps the latest total per point)
        totals: Dict[str, float] = {}
        for proc in cluster.processes.values():
            reg = proc.stats.registry
            for name in reg.names():
                metric = reg.get(name)
                if metric.kind == "counter":
                    totals[name] = totals.get(name, 0.0) + metric.total()
        for name, value in totals.items():
            if value or f"stats.{name}" in self.series:
                push(f"stats.{name}", t, float(value), "last")
        faults = totals.get("faults_read", 0.0) + totals.get(
            "faults_write", 0.0)
        push("faults.per_ms", t,
             (faults - last.get("faults", 0.0)) * 1000.0 / dt, "mean")
        last["faults"] = faults

        # DexServe feed: per-tenant queue depth / in-flight / admission
        # decisions, one synthetic Perfetto process (track) per tenant
        if self._serve is not None:
            for key, value, agg, pid, track in self._serve.scope_series():
                if pid not in self._serve_tracks:
                    self._serve_tracks[pid] = track
                push(key, t, value, agg, pid)

    # -- export ---------------------------------------------------------------

    def series_dict(self) -> Dict[str, Dict[str, Any]]:
        """Every series as plain JSON data (the manifest's ``series``
        section), keyed by series name, with the grid interval attached."""
        out: Dict[str, Dict[str, Any]] = {}
        for key in sorted(self.series):
            doc = self.series[key].to_dict()
            doc["interval_us"] = self.interval_us
            out[key] = doc
        return out

    def counter_events(self) -> List[Dict[str, Any]]:
        """Perfetto counter-track events (``"ph": "C"``), one track per
        series: per-node series attach to that node's process track, the
        rest to a synthetic ``cluster (DexScope)`` track.  Merge into a
        Chrome trace document via ``chrome_trace(spans, counters=...)``."""
        events: List[Dict[str, Any]] = []
        if any(pid == CLUSTER_PID for pid in self._series_pid.values()):
            events.append({
                "name": "process_name", "ph": "M", "pid": CLUSTER_PID,
                "tid": 0, "args": {"name": "cluster (DexScope)"},
            })
        for pid in sorted(self._serve_tracks):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid,
                "tid": 0, "args": {"name": self._serve_tracks[pid]},
            })
        for key in sorted(self.series):
            pid = self._series_pid[key]
            for ts, value in self.series[key].points():
                events.append({
                    "name": key, "ph": "C", "pid": pid, "ts": ts,
                    "args": {"value": value},
                })
        return events
