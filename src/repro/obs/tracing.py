"""Causal span tracing over the simulation engine.

A :class:`Span` is a named, timed interval of simulated work (a page
fault, a protocol grant, a wire transfer).  Spans form trees: within one
simulated process, ``with tracer.span(...)`` nests lexically; across
processes and nodes, parentage is carried explicitly — either by
:meth:`Tracer.carry`/:meth:`Tracer.adopt` when one sim process spawns or
serves another, or by the ``trace_id``/``parent_span`` fields that
:meth:`Tracer.inject` stamps onto outgoing :class:`~repro.net.messages.Message`
headers.  One contended page fault therefore renders as a single tree
spanning requester → home → victim.

Span context is keyed by the *currently executing* simulation process
(``engine.current_process``), so interleaved processes on one engine can
never steal each other's parents.  When tracing is off (``DEX_TRACE``
unset and ``SimParams.trace`` falsy) no tracer exists at all: hot paths
guard on ``proc.obs is None`` / use :func:`maybe_span`, and the engine
runs with empty hooks — zero cost.

Online consumers (the DexLens analytics layer, the flight recorder)
subscribe through :meth:`Tracer.add_sink`: a sink's ``on_span_close`` fires
once per span, at close time, with the span's final attrs — the only
sanctioned way to observe spans during the run.  Sinks that also define
``on_message`` additionally see every traced outbound message.  With no
sinks registered the close path costs one truthiness test on a pre-bound
(empty) callback list.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "maybe_span", "NULL_SPAN", "load_spans", "recent_tracers", "reset_recent"]


class Span:
    """One timed interval.  ``node``/``tid`` are -1 when not applicable
    (e.g. service-side work not bound to an app thread)."""

    __slots__ = (
        "name", "span_id", "trace_id", "parent_id",
        "node", "tid", "start_us", "end_us", "attrs", "adopted",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        trace_id: int,
        parent_id: Optional[int],
        node: int,
        tid: int,
        start_us: float,
        end_us: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
        adopted: bool = False,
    ):
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.node = node
        self.tid = tid
        self.start_us = start_us
        self.end_us = end_us
        self.attrs = attrs if attrs is not None else {}
        self.adopted = adopted

    @property
    def duration_us(self) -> float:
        return (self.end_us - self.start_us) if self.end_us is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "node": self.node,
            "tid": self.tid,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        return cls(
            d["name"], d["span_id"], d["trace_id"], d.get("parent_id"),
            d.get("node", -1), d.get("tid", -1),
            d["start_us"], d.get("end_us"), d.get("attrs") or {},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r} id={self.span_id} trace={self.trace_id}"
            f" parent={self.parent_id} node={self.node} tid={self.tid}"
            f" [{self.start_us:.1f}..{self.end_us}])"
        )


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`; closing pops the
    span off the owning process's stack and stamps ``end_us``."""

    __slots__ = ("_tracer", "span", "_key")

    def __init__(self, tracer: "Tracer", span: Span, key: Any):
        self._tracer = tracer
        self.span = span
        self._key = key

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        self.span.end_us = tracer.engine.now
        stack = tracer._stacks.get(self._key)
        if stack is not None:
            try:
                stack.remove(self.span)
            except ValueError:  # pragma: no cover - defensive
                pass
            if not stack:
                del tracer._stacks[self._key]
        if tracer._sink_close:
            for close in tracer._sink_close:
                close(self.span)
        return False


class _NullSpan:
    """Reusable no-op context manager (tracing off)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


def maybe_span(tracer: Optional["Tracer"], name: str, **attrs: Any):
    """``tracer.span(...)`` when tracing is on, a shared no-op context
    manager when *tracer* is None.  The single call + kwargs dict is the
    entire off-mode cost at instrumented sites that use this helper."""
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


# Tracers created since the last reset_recent(), newest last.  The obs CLI
# uses this to recover the tracer out of an app run that builds its own
# DexCluster internally (offline bookkeeping only — never read by sim code).
_RECENT: List["Tracer"] = []


def reset_recent() -> None:
    _RECENT.clear()


def recent_tracers() -> List["Tracer"]:
    return list(_RECENT)


class Tracer:
    """Per-engine span recorder.

    Registers itself as ``engine.tracer`` and as an engine hook so that
    adopted (message-handler) spans close and per-process stacks are
    reclaimed when their process finishes.
    """

    def __init__(self, engine, max_spans: int = 1_000_000):
        self.engine = engine
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._ids = itertools.count(1)
        # span stacks keyed by the sim Process that opened them (None key =
        # spans opened outside any process, e.g. test driver code)
        self._stacks: Dict[Any, List[Span]] = {}
        #: registered sinks plus their pre-bound callback lists; the close
        #: path iterates `_sink_close` directly (no getattr per span)
        self._sinks: List[Any] = []
        self._sink_close: List[Any] = []
        self._sink_msg: List[Any] = []
        engine.tracer = self
        engine.add_hook(self)
        _RECENT.append(self)

    # -- sinks ---------------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Register an online span consumer.  ``sink.on_span_close(span)``
        fires once per span at close time (lexical closes and adopted
        handler-root closes alike); a sink that also defines
        ``on_message(now, msg)`` sees every traced outbound message.  This
        is the only sanctioned registration path — direct mutation of the
        sink lists is a DexVet ``lens-sink-discipline`` violation."""
        self._sinks.append(sink)
        self._sink_close.append(sink.on_span_close)
        on_message = getattr(sink, "on_message", None)
        if on_message is not None:
            self._sink_msg.append(on_message)

    def note_message(self, msg) -> None:
        """Offer an outbound message to the registered sinks (called by the
        fabric's traced send path, right after :meth:`inject`)."""
        if self._sink_msg:
            now = self.engine.now
            for cb in self._sink_msg:
                cb(now, msg)

    # -- engine hook ---------------------------------------------------------

    def on_process_created(self, proc) -> None:
        pass

    def on_process_waiting(self, proc, target) -> None:
        pass

    def on_process_finished(self, proc) -> None:
        stack = self._stacks.pop(proc, None)
        if stack:
            now = self.engine.now
            for span in reversed(stack):
                # only spans this process *owns* (adopted roots); carried
                # markers belong to, and are closed by, another stack
                if span.adopted and span.end_us is None:
                    span.end_us = now
                    if self._sink_close:
                        for close in self._sink_close:
                            close(span)

    # -- recording -----------------------------------------------------------

    def _record(self, span: Span) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1

    def _key(self) -> Any:
        return self.engine.current_process

    def current(self) -> Optional[Span]:
        """Innermost open span of the currently executing process."""
        stack = self._stacks.get(self._key())
        return stack[-1] if stack else None

    def open_spans(self) -> List[Span]:
        """Every span still open right now, across all processes — the
        flight recorder dumps these as crash evidence (a deadlocked thread's
        blocked span never closes, so the ring alone would miss it)."""
        seen: Dict[int, Span] = {}
        for stack in self._stacks.values():
            for span in stack:
                if span.end_us is None:
                    seen[span.span_id] = span
        return [seen[k] for k in sorted(seen)]

    def span(self, name: str, *, node: int = -1, tid: int = -1, **attrs: Any) -> _SpanHandle:
        """Open a span as a context manager::

            with tracer.span("fault", node=2, tid=5, vpn=vpn):
                ...

        The span parents under the innermost open span of the current sim
        process (or starts a new trace if there is none)."""
        key = self._key()
        stack = self._stacks.get(key)
        parent = stack[-1] if stack else None
        span_id = next(self._ids)
        if parent is not None:
            trace_id: int = parent.trace_id
            parent_id: Optional[int] = parent.span_id
        else:
            trace_id = span_id
            parent_id = None
        span = Span(
            name, span_id, trace_id, parent_id,
            node, tid, self.engine.now, attrs=attrs,
        )
        if stack is None:
            self._stacks[key] = [span]
        else:
            stack.append(span)
        self._record(span)
        return _SpanHandle(self, span, key)

    # -- cross-process / cross-node propagation ------------------------------

    def inject(self, msg) -> None:
        """Stamp the current span context onto an outgoing message (only if
        the message doesn't already carry one — replies built with
        ``make_reply`` get the handler's context at their own send)."""
        if msg.trace_id is not None:
            return
        current = self.current()
        if current is not None:
            msg.trace_id = current.trace_id
            msg.parent_span = current.span_id

    def carry(self, sim_proc) -> None:
        """Seed *sim_proc*'s span stack with the caller's innermost open
        span, so spans the child process opens parent under it (used when a
        handler spawns sub-processes, e.g. a revocation fan-out)."""
        current = self.current()
        if current is not None and sim_proc not in self._stacks:
            self._stacks[sim_proc] = [current]

    def adopt(
        self,
        sim_proc,
        name: str,
        *,
        trace_id: Optional[int],
        parent_id: Optional[int],
        node: int = -1,
        tid: int = -1,
        **attrs: Any,
    ) -> Span:
        """Open *name* as the root span of *sim_proc* (a message-handler
        process), parented on a message-carried context.  The span closes
        when the process finishes (engine hook)."""
        span_id = next(self._ids)
        span = Span(
            name, span_id,
            trace_id if trace_id is not None else span_id,
            parent_id, node, tid, self.engine.now,
            attrs=attrs, adopted=True,
        )
        self._stacks[sim_proc] = [span]
        self._record(span)
        return span

    # -- persistence ---------------------------------------------------------

    def save_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(
                {
                    "format": "dextrace-spans-v1",
                    "dropped": self.dropped,
                    "max_spans": self.max_spans,
                    "spans": [s.to_dict() for s in self.spans],
                },
                fh,
            )


def load_spans(path: str) -> Tuple[List[Span], Dict[str, Any]]:
    """Load spans saved by :meth:`Tracer.save_json`; returns
    ``(spans, meta)`` where meta holds ``dropped``/``max_spans``."""
    with open(path) as fh:
        doc = json.load(fh)
    spans = [Span.from_dict(d) for d in doc.get("spans", [])]
    meta = {k: v for k, v in doc.items() if k != "spans"}
    return spans, meta
