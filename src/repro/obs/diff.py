"""Cross-run differential attribution: compare two run manifests.

``python -m repro.obs diff A.json B.json`` answers the question a
regression report has to answer to be actionable: not just *what* got
slower, but *where the time went*.  The comparison has three layers:

* **ranked metric deltas** — every shared counter, latency quantile, and
  headline result metric, ordered by relative change;
* **phase attribution** — the DexLens critical-path histograms
  (queue/wire/handler/blocked/compute) are compared as totals, and the
  phase with the largest absolute growth is named the *dominant* phase
  of the regression;
* **shard attribution** — per-home directory request deltas name the
  shard whose load moved.

A thresholded verdict (``--check``) turns the diff into a CI trend
guard: the exit status is nonzero when a headline metric (end-to-end
sim time, fault p99) regressed by more than ``--threshold`` (default
10%), with a one-line attribution like ``p99 fault latency +12%,
dominated by wire (+9.1 ms, 61% of growth), hottest shard 3``.

``--bench`` compares the trajectory that ``python -m repro.bench perf``
appends to ``BENCH_engine.json`` instead (wall-clock engine throughput
over time): the newest trajectory entry against the best earlier one.

Pure manifest arithmetic — no simulation imports, no wall clocks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "DiffReport",
    "MetricDelta",
    "diff_manifests",
    "diff_trajectory",
    "format_report",
]

#: metrics whose regression flips the verdict (name, manifest path)
HEADLINE_METRICS = (
    ("sim_time_us", ("result", "sim_time_us")),
    ("fault_p99_us", ("quantiles", "fault_latency_us", "overall", "p99")),
)

#: ignore relative changes on values this small (counter noise floor)
_ABS_FLOOR = 1e-9


class MetricDelta:
    """One compared metric: ``a`` (baseline) vs ``b`` (candidate)."""

    __slots__ = ("name", "a", "b", "delta", "rel", "kind")

    def __init__(self, name: str, a: float, b: float, kind: str):
        self.name = name
        self.a = a
        self.b = b
        self.delta = b - a
        base = abs(a)
        self.rel = (self.delta / base) if base > _ABS_FLOOR else (
            0.0 if abs(self.delta) <= _ABS_FLOOR else float("inf")
        )
        self.kind = kind  # "result" | "counter" | "quantile" | "phase"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "kind": self.kind,
            "a": self.a, "b": self.b,
            "delta": self.delta, "rel": self.rel,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricDelta {self.name} {self.rel:+.1%}>"


class DiffReport:
    """The full comparison: ranked deltas plus verdict and attribution."""

    def __init__(
        self,
        label_a: str,
        label_b: str,
        deltas: List[MetricDelta],
        *,
        threshold: float,
        regressions: List[MetricDelta],
        dominant_phase: Optional[str],
        dominant_share: float,
        dominant_delta_us: float,
        hottest_shard: Optional[str],
        shard_delta: float,
    ):
        self.label_a = label_a
        self.label_b = label_b
        self.deltas = deltas
        self.threshold = threshold
        self.regressions = regressions
        self.dominant_phase = dominant_phase
        self.dominant_share = dominant_share
        self.dominant_delta_us = dominant_delta_us
        self.hottest_shard = hottest_shard
        self.shard_delta = shard_delta

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def attribution(self) -> str:
        """The one-line verdict a CI log (or a human) reads first."""
        if not self.regressions:
            return (
                f"ok: no headline metric regressed more than "
                f"{self.threshold:.0%} ({self.label_b} vs {self.label_a})"
            )
        worst = self.regressions[0]
        parts = [f"{worst.name} {worst.rel:+.1%}"]
        if self.dominant_phase is not None:
            parts.append(
                f"dominated by {self.dominant_phase} "
                f"({self.dominant_delta_us:+,.0f} us, "
                f"{self.dominant_share:.0%} of growth)"
            )
        if self.hottest_shard is not None:
            parts.append(
                f"hottest shard {self.hottest_shard} "
                f"({self.shard_delta:+,.0f} requests)"
            )
        return "regression: " + ", ".join(parts)


def _get_path(doc: Dict[str, Any], path: Tuple[str, ...]) -> Optional[float]:
    node: Any = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _shared_numbers(
    a: Dict[str, Any], b: Dict[str, Any]
) -> List[Tuple[str, float, float]]:
    out = []
    for key in sorted(set(a) & set(b)):
        va, vb = a[key], b[key]
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            out.append((key, float(va), float(vb)))
    return out


def diff_manifests(
    a: Dict[str, Any],
    b: Dict[str, Any],
    *,
    threshold: float = 0.10,
) -> DiffReport:
    """Compare candidate *b* against baseline *a* (both manifest docs)."""
    deltas: List[MetricDelta] = []

    for name, path in HEADLINE_METRICS:
        va, vb = _get_path(a, path), _get_path(b, path)
        if va is not None and vb is not None:
            deltas.append(MetricDelta(name, va, vb, "result"))

    for key, va, vb in _shared_numbers(
        a.get("counters", {}), b.get("counters", {})
    ):
        if va or vb:
            deltas.append(MetricDelta(key, va, vb, "counter"))

    qa = a.get("quantiles", {}).get("fault_latency_us", {})
    qb = b.get("quantiles", {}).get("fault_latency_us", {})
    for mode in sorted(set(qa.get("by_mode", {})) & set(qb.get("by_mode", {}))):
        for q in ("p50", "p99"):
            va = qa["by_mode"][mode].get(q)
            vb = qb["by_mode"][mode].get(q)
            if va is not None and vb is not None:
                deltas.append(
                    MetricDelta(f"fault_{mode}_{q}_us", va, vb, "quantile")
                )

    # phase totals: where the critical-path microseconds moved
    phases_a = a.get("phases", {})
    phases_b = b.get("phases", {})
    phase_growth: List[Tuple[str, float]] = []
    for phase in sorted(set(phases_a) & set(phases_b)):
        sum_a = float(phases_a[phase].get("sum", 0.0))
        sum_b = float(phases_b[phase].get("sum", 0.0))
        deltas.append(MetricDelta(f"phase_{phase}_us", sum_a, sum_b, "phase"))
        phase_growth.append((phase, sum_b - sum_a))

    dominant_phase: Optional[str] = None
    dominant_share = 0.0
    dominant_delta_us = 0.0
    grew = [(p, d) for p, d in phase_growth if d > 0.0]
    if grew:
        total_growth = sum(d for _, d in grew)
        dominant_phase, dominant_delta_us = max(grew, key=lambda pd: pd[1])
        dominant_share = (
            dominant_delta_us / total_growth if total_growth > 0 else 0.0
        )

    # shard attribution: whose directory load moved the most
    hottest_shard: Optional[str] = None
    shard_delta = 0.0
    dir_a = a.get("directory_requests", {})
    dir_b = b.get("directory_requests", {})
    for home in set(dir_a) | set(dir_b):
        d = float(dir_b.get(home, 0)) - float(dir_a.get(home, 0))
        if abs(d) > abs(shard_delta):
            hottest_shard, shard_delta = home, d

    deltas.sort(key=lambda m: (-abs(m.rel), -abs(m.delta), m.name))
    regressions = [
        m for m in deltas
        if m.kind == "result" and m.rel > threshold
    ]
    regressions.sort(key=lambda m: -m.rel)

    return DiffReport(
        a.get("label", "A"),
        b.get("label", "B"),
        deltas,
        threshold=threshold,
        regressions=regressions,
        dominant_phase=dominant_phase,
        dominant_share=dominant_share,
        dominant_delta_us=dominant_delta_us,
        hottest_shard=hottest_shard,
        shard_delta=shard_delta,
    )


def format_report(report: DiffReport, *, limit: int = 20) -> str:
    """Render the ranked table plus the verdict line."""
    lines = [
        f"diff: {report.label_b} vs baseline {report.label_a}",
        f"  {'metric':<28}{'baseline':>14}{'candidate':>14}{'change':>10}",
    ]
    shown = 0
    for m in report.deltas:
        if shown >= limit:
            lines.append(f"  ... {len(report.deltas) - shown} more metrics")
            break
        if m.delta == 0.0:
            continue
        rel = f"{m.rel:+.1%}" if m.rel != float("inf") else "new"
        lines.append(
            f"  {m.name:<28}{m.a:>14,.1f}{m.b:>14,.1f}{rel:>10}"
        )
        shown += 1
    if shown == 0:
        lines.append("  (no metric changed)")
    lines.append(report.attribution())
    return "\n".join(lines)


# -- bench trajectory ---------------------------------------------------------

def diff_trajectory(
    doc: Dict[str, Any], *, threshold: float = 0.25,
) -> Tuple[bool, str]:
    """Trend-check the ``trajectory`` list ``repro.bench perf`` appends to
    its output document: the newest entry's slowest point against the best
    earlier run of the same mode.  Returns ``(regressed, message)``.

    Wall-clock benchmark numbers are noisy, hence the looser default
    threshold (matching the bench module's own 25% guard band).
    """
    trajectory = doc.get("trajectory", [])
    if len(trajectory) < 2:
        return False, (
            f"trajectory has {len(trajectory)} entries; "
            "need at least 2 to compare"
        )
    latest = trajectory[-1]
    earlier = [
        entry for entry in trajectory[:-1]
        if entry.get("mode") == latest.get("mode")
    ]
    if not earlier:
        return False, "no earlier trajectory entry with a matching mode"

    def _rates(entry: Dict[str, Any]) -> Dict[str, float]:
        # higher-is-better rate per point: dispatch throughput where the
        # point records one, else inverse wall time (the app points)
        out: Dict[str, float] = {}
        for name, point in entry.get("points", {}).items():
            rate = point.get(
                "workload_events_per_sec", point.get("events_per_sec")
            )
            if rate is None and point.get("wall_s"):
                rate = 1.0 / float(point["wall_s"])
            if rate:
                out[name] = float(rate)
        return out
    latest_rates = _rates(latest)
    best: Dict[str, float] = {}
    for entry in earlier:
        for name, rate in _rates(entry).items():
            if rate > best.get(name, 0.0):
                best[name] = rate
    worst_name, worst_ratio = None, 1.0
    for name, rate in latest_rates.items():
        if name in best and best[name] > 0:
            ratio = rate / best[name]
            if ratio < worst_ratio:
                worst_name, worst_ratio = name, ratio
    if worst_name is None:
        return False, "no shared benchmark points to compare"
    msg = (
        f"bench trend: {worst_name} at {worst_ratio:.0%} of its best "
        f"recorded rate over {len(earlier) + 1} runs"
    )
    return worst_ratio < (1.0 - threshold), msg
