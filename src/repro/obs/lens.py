"""DexLens: online, bounded-memory trace analytics.

Everything here runs *during* the simulation, fed exclusively by the
tracer's span-close sink hook (:meth:`repro.obs.tracing.Tracer.add_sink`)
— no engine events are ever scheduled, so sim time with the lens on is
bit-identical to a plain traced run, and a lens-off run is bit-identical
to an untraced one (no lens object exists at all).

Three consumers ride the sink:

* :class:`LensFeed` — sliding sim-time windows of per-page fault rate,
  owner churn (exclusive-ownership transfers), and (requester -> victim)
  ping-pong pair counts, each with slice-based decay and a fixed key cap;
  plus per-(phase x app x mode) critical-path latency histograms filled
  by the one-pass tree walk below.  This is the stable query API the
  future placement balancer consumes.
* :class:`TopView` — the ``python -m repro.obs top`` live terminal view;
  renders opportunistically whenever a span close crosses the next
  sim-time deadline (never schedules anything).
* :class:`~repro.obs.ring.FlightRecorder` — see :mod:`repro.obs.ring`.

Critical-path extraction: spans are buffered per trace as they close;
when a trace's *root* closes the tree is walked once with a
deepest-active-span sweep — every instant of the tree's lifetime is
attributed to the :class:`~repro.obs.export.PathPhase` of the deepest
span covering it, root-owned residual counting as queueing.  Ownership
is exclusive, so the per-phase parts sum to the tree's covered wall time
even though handler and wire legs run concurrently with their waiting
ancestors; equal-depth parallel fan-out legs (a multi-victim revocation)
attribute to a single leg, critical-path style.  The buffer holds at
most ``lens_max_traces`` incomplete trees (FIFO eviction, counted).

Enable with ``SimParams(lens="1")`` / ``DEX_LENS=1``; the lens implies a
tracer.  All knobs live on :class:`~repro.params.SimParams` (``lens_*``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import PathPhase, path_phase_of, phase_of
from repro.obs.metrics import Histogram
from repro.obs.ring import FlightRecorder
from repro.obs.tracing import Span, Tracer

__all__ = [
    "DexLens",
    "LensFeed",
    "PageHeat",
    "SlidingWindow",
    "TopView",
    "live_view",
    "recent_lenses",
    "reset_recent",
]


class SlidingWindow:
    """A decaying multiset of keyed counts over a sliding sim-time window.

    The window is split into ``slices`` equal slices; counts expire a
    whole slice at a time as sim time advances (that slice-granular drop
    *is* the decay).  Live keys are capped: past ``max_keys`` the coldest
    keys are evicted in one batch, and ``evicted`` counts them so a capped
    window is never silently mistaken for a complete one.
    """

    __slots__ = (
        "window_us", "slices", "slice_us", "max_keys",
        "_totals", "_ring", "_head", "evicted",
    )

    def __init__(self, window_us: float, slices: int = 8, max_keys: int = 4096):
        if window_us <= 0 or slices < 1 or max_keys < 1:
            raise ValueError("window needs window_us > 0, slices >= 1, max_keys >= 1")
        self.window_us = float(window_us)
        self.slices = slices
        self.slice_us = self.window_us / slices
        self.max_keys = max_keys
        self._totals: Dict[Any, float] = {}
        #: slice index -> {key: count}; only the last `slices` indices live
        self._ring: "OrderedDict[int, Dict[Any, float]]" = OrderedDict()
        self._head = -1  # highest slice index seen
        self.evicted = 0

    def _advance(self, now: float) -> None:
        idx = int(now / self.slice_us)
        if idx <= self._head and self._ring:
            return
        self._head = max(self._head, idx)
        floor = self._head - self.slices + 1
        ring = self._ring
        totals = self._totals
        while ring:
            oldest = next(iter(ring))
            if oldest >= floor:
                break
            for key, amount in ring.popitem(last=False)[1].items():
                left = totals.get(key, 0.0) - amount
                if left > 1e-9:
                    totals[key] = left
                else:
                    totals.pop(key, None)

    def add(self, now: float, key: Any, amount: float = 1.0) -> None:
        self._advance(now)
        idx = int(now / self.slice_us)
        slot = self._ring.get(idx)
        if slot is None:
            slot = self._ring[idx] = {}
        slot[key] = slot.get(key, 0.0) + amount
        self._totals[key] = self._totals.get(key, 0.0) + amount
        if len(self._totals) > self.max_keys:
            self._evict()

    def _evict(self) -> None:
        # batch-drop the coldest ~1/8 so eviction cost amortizes
        drop = max(1, self.max_keys // 8)
        victims = sorted(self._totals, key=self._totals.__getitem__)[:drop]
        for key in victims:
            del self._totals[key]
            for slot in self._ring.values():
                slot.pop(key, None)
        self.evicted += len(victims)

    def get(self, now: float, key: Any) -> float:
        self._advance(now)
        return self._totals.get(key, 0.0)

    def total(self, now: float) -> float:
        self._advance(now)
        return sum(self._totals.values())

    def top(self, now: float, n: int = 10) -> List[Tuple[Any, float]]:
        self._advance(now)
        ranked = sorted(self._totals.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[:n]

    def __len__(self) -> int:
        return len(self._totals)


class PageHeat:
    """One hot page as the feed reports it."""

    __slots__ = ("vpn", "faults", "rate_per_ms", "churn")

    def __init__(self, vpn: int, faults: float, rate_per_ms: float, churn: float):
        self.vpn = vpn
        self.faults = faults
        self.rate_per_ms = rate_per_ms
        self.churn = churn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageHeat(vpn={self.vpn:#x} faults={self.faults:.0f}"
            f" rate={self.rate_per_ms:.2f}/ms churn={self.churn:.0f})"
        )


class LensFeed:
    """The stable query surface over the streaming heat statistics and the
    critical-path histograms.  All queries are side-effect free (beyond
    window advancement) and safe to call at any point of the run."""

    def __init__(
        self,
        engine,
        *,
        window_us: float = 5_000.0,
        slices: int = 8,
        max_keys: int = 4096,
    ):
        self.engine = engine
        self.window_us = float(window_us)
        self._faults = SlidingWindow(window_us, slices, max_keys)
        self._churn = SlidingWindow(window_us, slices, max_keys)
        self._pairs = SlidingWindow(window_us, slices, max_keys)
        #: critical-path latency, log buckets, per (phase x app x mode)
        self.path_us = Histogram(
            "lens_path_us",
            "critical-path attributed latency per completed span tree",
            labelnames=("phase", "app", "mode"),
        )
        #: end-to-end latency per completed tree, per (app x mode)
        self.tree_us = Histogram(
            "lens_tree_us",
            "end-to-end latency per completed span tree",
            labelnames=("app", "mode"),
        )
        self.trees_completed = 0
        self.trees_evicted = 0

    # -- update entry points (called by the sink only) ----------------------

    def _on_fault(self, now: float, vpn: int) -> None:
        self._faults.add(now, vpn)

    def _on_write_grant(self, now: float, vpn: int) -> None:
        self._churn.add(now, vpn)

    def _on_invalidate(self, now: float, vpn: int, requester: int, victim: int) -> None:
        self._pairs.add(now, (vpn, requester, victim))

    # -- heat queries -------------------------------------------------------

    def page_faults(self, vpn: int) -> float:
        """Faults on *vpn* inside the current window."""
        return self._faults.get(self.engine.now, vpn)

    def fault_rate(self, vpn: int) -> float:
        """Faults per simulated millisecond on *vpn*, over the window."""
        now = self.engine.now
        span = min(self.window_us, now) or self.window_us
        return self._faults.get(now, vpn) * 1000.0 / span

    def hot_pages(self, top: int = 10) -> List[PageHeat]:
        now = self.engine.now
        span = min(self.window_us, now) or self.window_us
        return [
            PageHeat(vpn, count, count * 1000.0 / span, self._churn.get(now, vpn))
            for vpn, count in self._faults.top(now, top)
        ]

    def owner_churn(self, vpn: int) -> float:
        """Exclusive-ownership transfers of *vpn* inside the window."""
        return self._churn.get(self.engine.now, vpn)

    def churn_pages(self, top: int = 10) -> List[Tuple[int, float]]:
        return self._churn.top(self.engine.now, top)

    def ping_pong_pairs(
        self, top: int = 10, vpn: Optional[int] = None
    ) -> List[Tuple[Tuple[int, int], float]]:
        """Worst (requester -> victim) invalidation pairs in the window,
        aggregated across pages (or restricted to one *vpn*)."""
        now = self.engine.now
        agg: Dict[Tuple[int, int], float] = {}
        self._pairs._advance(now)
        for (page, requester, victim), count in self._pairs._totals.items():
            if vpn is not None and page != vpn:
                continue
            pair = (requester, victim)
            agg[pair] = agg.get(pair, 0.0) + count
        ranked = sorted(agg.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]

    def page_pairs(self, vpn: int) -> List[Tuple[int, int, float]]:
        """Per-page (requester, victim, count) triples, hottest first —
        shaped like ``tools.analysis.PageReport.invalidation_pairs``."""
        now = self.engine.now
        self._pairs._advance(now)
        triples = [
            (requester, victim, count)
            for (page, requester, victim), count in self._pairs._totals.items()
            if page == vpn
        ]
        triples.sort(key=lambda t: (-t[2], t[0], t[1]))
        return triples

    @property
    def evicted(self) -> Dict[str, int]:
        """Keys dropped by the memory cap, per statistic (0 = complete)."""
        return {
            "faults": self._faults.evicted,
            "churn": self._churn.evicted,
            "pairs": self._pairs.evicted,
        }

    # -- critical-path queries ----------------------------------------------

    def path_breakdown(
        self, app: Optional[str] = None, mode: Optional[str] = None
    ) -> Dict[str, Dict[str, Any]]:
        """Per-:class:`PathPhase` latency snapshot (count/mean/p50/p99/...),
        optionally restricted to one app-phase and/or mode label."""
        per_phase: Dict[str, List[Histogram]] = {}
        for (phase, app_label, mode_label), child in self.path_us.per_label().items():
            if app is not None and app_label != app:
                continue
            if mode is not None and mode_label != mode:
                continue
            per_phase.setdefault(phase, []).append(child)
        out: Dict[str, Dict[str, Any]] = {}
        for phase, children in per_phase.items():
            if len(children) == 1:
                out[phase] = children[0].snapshot()
                continue
            merged = children[0]._make_child()
            for hist in children:
                for i, n in enumerate(hist.counts):
                    merged.counts[i] += n
                merged.count += hist.count
                merged.sum += hist.sum
                merged.min = min(merged.min, hist.min)
                merged.max = max(merged.max, hist.max)
            out[phase] = merged.snapshot()
        return out

    def _record_tree(self, root: Span, members: List[Span]) -> None:
        """The one-pass walk: attribute *root*'s end-to-end latency to path
        phases by a deepest-active-span sweep.

        At every instant of the tree's lifetime the time belongs to the
        *deepest* span covering it — the leg actually being serviced (the
        wire transfer, the remote handler, the revocation wait); intervals
        no descendant covers fall to their parent, and root-owned residual
        is queueing.  Because ownership is exclusive, the per-phase parts
        sum to the tree's covered wall time — nothing is double-counted
        even though a child subtree (wire delivery, an adopted handler)
        runs concurrently with its waiting ancestor.  Parallel fan-out legs
        at equal depth attribute to one leg (critical-path semantics)."""
        app_cat = phase_of(root.name)
        app = app_cat[0] if app_cat is not None else "other"
        mode = _tree_mode(root)
        multi = len(members) > 1
        depth: Dict[int, int] = {root.span_id: 0}
        index = {span.span_id: span for span in members}

        def depth_of(span: Span) -> int:
            d = depth.get(span.span_id)
            if d is None:
                parent = index.get(span.parent_id)
                d = 1 if parent is None else depth_of(parent) + 1
                depth[span.span_id] = d
            return d

        # sweep events: (time, is_end, depth, span); ends before starts at
        # ties so back-to-back legs hand over cleanly
        events = []
        for span in members:
            if span.end_us is None or span.end_us <= span.start_us:
                continue
            d = depth_of(span)
            events.append((span.start_us, 1, d, span))
            events.append((span.end_us, 0, d, span))
        events.sort(key=lambda e: (e[0], e[1]))
        active: Dict[int, Tuple[int, Span]] = {}
        phases: Dict[PathPhase, float] = {}
        last_t: Optional[float] = None
        for t, is_start, d, span in events:
            if active and last_t is not None and t > last_t:
                _, owner = max(
                    active.values(), key=lambda ds: (ds[0], ds[1].span_id)
                )
                if owner is root and multi:
                    # root residual = requester-side work between the legs
                    # (trap cost, PTE updates, retry backoff): queueing.  A
                    # single-span tree classifies by its own name instead
                    phase = PathPhase.QUEUE
                else:
                    phase = path_phase_of(owner.name)
                phases[phase] = phases.get(phase, 0.0) + (t - last_t)
            if is_start:
                active[span.span_id] = (d, span)
            else:
                active.pop(span.span_id, None)
            last_t = t
        for phase, us in phases.items():
            self.path_us.labels(phase=phase.value, app=app, mode=mode).observe(us)
        self.tree_us.labels(app=app, mode=mode).observe(root.duration_us)
        self.trees_completed += 1


def _tree_mode(root: Span) -> str:
    """The §V-D mode label of a completed tree, matching ``DexStats``:
    contended (retried), coalesced, or fast."""
    attrs = root.attrs
    if attrs.get("retries"):
        return "contended"
    if attrs.get("coalesced"):
        return "coalesced"
    return "fast"


class LensSink:
    """The span-close sink: routes heat events to the feed and buffers
    spans per trace for critical-path extraction on root close."""

    __slots__ = ("feed", "max_traces", "_traces")

    def __init__(self, feed: LensFeed, max_traces: int = 256):
        self.feed = feed
        self.max_traces = max_traces
        self._traces: "OrderedDict[int, List[Span]]" = OrderedDict()

    def on_span_close(self, span: Span) -> None:
        feed = self.feed
        name = span.name
        attrs = span.attrs
        end = span.end_us
        if name == "fault":
            feed._on_fault(end, attrs["vpn"])
        elif name == "protocol.invalidate":
            # span.node is the victim applying the revocation
            feed._on_invalidate(end, attrs["vpn"], attrs["requester"], span.node)
        elif name == "protocol.grant" and attrs.get("write"):
            feed._on_write_grant(end, attrs["vpn"])
        # critical-path buffering
        traces = self._traces
        members = traces.get(span.trace_id)
        if members is None:
            if len(traces) >= self.max_traces:
                traces.popitem(last=False)
                feed.trees_evicted += 1
            members = traces[span.trace_id] = []
        members.append(span)
        if span.parent_id is None:
            del traces[span.trace_id]
            feed._record_tree(span, members)


class TopView:
    """Live terminal frames at a configurable sim-time interval.

    Rendering piggybacks on span closes: whenever one lands past the next
    deadline a frame is printed.  Nothing is scheduled on the engine, so
    sim time and event order are untouched by the view.
    """

    def __init__(self, feed: LensFeed, interval_us: float = 10_000.0,
                 limit: int = 8, stream=None):
        self.feed = feed
        self.interval_us = float(interval_us)
        self.limit = limit
        self.stream = stream
        self.frames = 0
        self._next = self.interval_us

    def on_span_close(self, span: Span) -> None:
        end = span.end_us
        if end is not None and end >= self._next:
            self._next = (int(end / self.interval_us) + 1) * self.interval_us
            self.render()

    def render(self) -> str:
        feed = self.feed
        now = feed.engine.now
        lines = [
            f"=== dex top @ {now:.0f}us"
            f" (window {feed.window_us:.0f}us,"
            f" {feed.trees_completed} trees) ==="
        ]
        lines.append(f"  {'hottest pages':<20}{'faults':>8}{'/ms':>8}{'churn':>8}")
        for heat in feed.hot_pages(self.limit):
            lines.append(
                f"  {heat.vpn:<#20x}{heat.faults:>8.0f}"
                f"{heat.rate_per_ms:>8.1f}{heat.churn:>8.0f}"
            )
        pairs = feed.ping_pong_pairs(self.limit)
        if pairs:
            lines.append(f"  {'ping-pong pairs':<20}{'invals':>8}")
            for (requester, victim), count in pairs:
                lines.append(f"  n{requester}->n{victim:<15}{count:>10.0f}")
        breakdown = feed.path_breakdown()
        if breakdown:
            lines.append(
                f"  {'critical path':<14}{'count':>8}{'p50 us':>10}{'p99 us':>10}"
            )
            for phase in PathPhase:
                snap = breakdown.get(phase.value)
                if snap is None or not snap["count"]:
                    continue
                lines.append(
                    f"  {phase.value:<14}{snap['count']:>8}"
                    f"{snap['p50']:>10.1f}{snap['p99']:>10.1f}"
                )
        frame = "\n".join(lines)
        self.frames += 1
        if self.stream is not None:
            print(frame, file=self.stream)
        return frame


# -- live-view request (offline CLI bookkeeping, mirrors tracing._RECENT) ----

#: when set (by the `obs top` CLI), every DexLens constructed attaches a
#: TopView with these settings; never read by sim code
_LIVE_VIEW: Optional[Dict[str, Any]] = None


class live_view:
    """Context manager the CLI uses to request a live TopView on clusters
    built inside an app run::

        with live_view(interval_us=10_000.0, stream=sys.stdout):
            run_point("KMN", ...)
    """

    def __init__(self, **settings: Any):
        self.settings = settings

    def __enter__(self):
        global _LIVE_VIEW
        _LIVE_VIEW = self.settings
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _LIVE_VIEW
        _LIVE_VIEW = None
        return False


#: lenses created since reset_recent(), newest last (CLI recovery only)
_RECENT: List["DexLens"] = []


def reset_recent() -> None:
    _RECENT.clear()


def recent_lenses() -> List["DexLens"]:
    return list(_RECENT)


class DexLens:
    """The per-cluster analytics bundle: wires a :class:`LensFeed`, a
    :class:`~repro.obs.ring.FlightRecorder`, and (when the CLI asked for
    one) a :class:`TopView` onto the cluster's tracer via the sink hook."""

    def __init__(self, cluster, tracer: Tracer):
        params = cluster.params
        self.cluster = cluster
        self.tracer = tracer
        self.feed = LensFeed(
            cluster.engine,
            window_us=params.lens_window_us,
            slices=params.lens_window_slices,
            max_keys=params.lens_max_keys,
        )
        self.sink = LensSink(self.feed, max_traces=params.lens_max_traces)
        tracer.add_sink(self.sink)
        self.recorder = FlightRecorder(
            tracer,
            num_nodes=cluster.num_nodes,
            ring_spans=params.lens_ring_spans,
            ring_msgs=params.lens_ring_msgs,
        )
        tracer.add_sink(self.recorder)
        self.view: Optional[TopView] = None
        if _LIVE_VIEW is not None:
            self.view = TopView(self.feed, **_LIVE_VIEW)
            tracer.add_sink(self.view)
        self.dump_path: Optional[str] = None
        _RECENT.append(self)

    def dump_on_crash(self, err: BaseException) -> Optional[str]:
        """Flight-recorder auto-dump: write the snapshot named by
        ``SimParams.lens_dump_path`` (default ``./dex-flightrec.json``;
        ``""`` disables).  Idempotent per lens — the first failure wins,
        retries/re-raises do not overwrite the evidence."""
        if self.dump_path is not None:
            return self.dump_path
        path = self.cluster.params.lens_dump_path
        if path == "":
            return None
        if path is None:
            path = "dex-flightrec.json"
        self.recorder.dump(path, reason=f"{type(err).__name__}: {err}")
        self.dump_path = path
        return path
