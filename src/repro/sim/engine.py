"""Deterministic discrete-event simulation engine.

The engine keeps two scheduling structures merged into one logical
priority queue of ``[time, sequence, fn, args]`` entries:

* a **heap** for entries scheduled in the future (``_schedule_at``), and
* a same-time FIFO **fast lane** (a deque) for entries scheduled at the
  current instant (``_schedule_now``) — event callbacks are by far the
  hottest scheduling operation and a deque append/popleft is much cheaper
  than a heap push/pop.

Because the clock never moves backwards while entries are pending and the
sequence number is monotonically increasing, the fast lane is always
sorted by ``(time, sequence)``; the run loop merges the two structures by
comparing their heads, which preserves the exact global dispatch order of
a single heap.  Simulated activities are generator functions wrapped in
:class:`Process`; whenever a process yields a waitable (:class:`Event`,
:class:`Timeout`, or another :class:`Process`), it is suspended until the
waitable triggers, at which point the waitable's value is sent back into
the generator (or its exception is thrown into it).

Time is a float in **microseconds**.  All ordering ties are broken by a
monotonically increasing sequence number, which makes runs bit-for-bit
reproducible for a fixed seed.

Cancellation is *tagged*: a cancelled :class:`Timeout` nulls the ``fn``
slot of its own queue entry, so the dispatcher skips it with a single
``is None`` check instead of probing ``__self__`` attributes on every
iteration; when cancelled entries pile up the heap is compacted in one
pass.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

_UNSET = object()
_INF = float("inf")


def _env_knob(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("", "0", "off", "false", "no")


class SimulationError(Exception):
    """Raised for illegal engine usage (double trigger, bad yield, ...)."""


class Immediate:
    """A ``yield from``-able carrying an already-computed result.

    Fast paths that finish synchronously (no simulated time, no
    suspension) can return ``Immediate(value)`` instead of a generator:
    delegation consumes it without a single yield, so the caller's
    ``result = yield from fn(...)`` works unchanged at a fraction of the
    generator set-up cost."""

    __slots__ = ("value",)

    def __init__(self, value: Any = None):
        self.value = value

    def __iter__(self) -> "Immediate":
        return self

    def __next__(self) -> Any:
        raise StopIteration(self.value)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives the exception at its current yield
    point and may catch it to implement retries or cancellation.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts untriggered.  It is completed exactly once, either with
    :meth:`succeed` (delivering a value) or :meth:`fail` (delivering an
    exception).  Callbacks registered before completion run, in registration
    order, at the simulation time of the completion.
    """

    __slots__ = ("engine", "_value", "_exc", "_done", "_callbacks", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._value: Any = _UNSET
        self._exc: Optional[BaseException] = None
        self._done = False
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def ok(self) -> bool:
        return self._done and self._exc is None

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"event {self!r} has not triggered yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._done:
            raise SimulationError(f"event {self!r} already triggered")
        self._done = True
        self._value = value
        self.engine._schedule_callbacks(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._done:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._done = True
        self._exc = exc
        self.engine._schedule_callbacks(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event completes (immediately-scheduled
        if it already has)."""
        if self._done:
            self.engine._schedule_now(fn, self)
        else:
            assert self._callbacks is not None
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} @{id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay", "_cancelled", "_entry")

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ minus the f-string name: Timeouts are the
        # most-allocated event type and the label is recomputed lazily by
        # __repr__ on the rare debugging path instead.
        self.engine = engine
        self.name = ""
        self._value = _UNSET
        self._exc = None
        self._done = False
        self._callbacks = []
        self.delay = delay
        self._cancelled = False
        # inlined _schedule_at (Timeouts are the most-scheduled entry kind);
        # delay >= 0 was checked above so `when` can never be in the past
        engine._seq += 1
        self._entry = entry = [engine.now + delay, engine._seq, self._fire, (value,)]
        heapq.heappush(engine._queue, entry)

    def cancel(self) -> None:
        """Discard an untriggered timeout.  Its queue entry is skipped
        without advancing the clock, so an abandoned deadline (e.g. a retry
        timer whose reply arrived) does not distort the final sim time when
        :meth:`Engine.run` drains the queue."""
        if not self._done and not self._cancelled:
            self._cancelled = True
            entry = self._entry
            entry[2] = None
            entry[3] = None
            self._entry = None
            engine = self.engine
            engine._cancelled_entries += 1
            if (
                engine._cancelled_entries > 64
                and engine._cancelled_entries * 2 > len(engine._queue)
            ):
                engine._compact()

    def rearm(self, delay: float) -> "Timeout":
        """Reset an already-settled timeout and schedule it afresh.

        Strictly for *private* single-waiter timeouts (e.g. the compute
        sleep) whose previous firing has fully settled: the sole waiter was
        resumed, nothing else holds a reference.  Consumes one sequence
        number at the call site, exactly like constructing a new Timeout
        here would, so dispatch order is unchanged."""
        self._value = _UNSET
        self._exc = None
        self._done = False
        self._callbacks = []
        self.delay = delay
        self._cancelled = False
        engine = self.engine
        engine._seq += 1
        self._entry = entry = [engine.now + delay, engine._seq, self._fire, (None,)]
        heapq.heappush(engine._queue, entry)
        return self

    def _fire(self, value: Any) -> None:
        # Unlike succeed(), which may be reached from arbitrarily deep in
        # model code and must defer callbacks to the queue, _fire only ever
        # runs as a dispatched queue entry (top of stack), so its callbacks
        # can run synchronously at this very dispatch position — saving a
        # scheduling round trip per elapsed timeout.  Knob-gated with the
        # other resume-collapsing optimisation and covered by the same
        # determinism differential tests.
        self._entry = None
        engine = self.engine
        if not engine._inline:
            self.succeed(value)
            return
        if self._done:
            raise SimulationError(f"event {self!r} already triggered")
        self._done = True
        self._value = value
        callbacks = self._callbacks
        self._callbacks = None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"<Timeout({self.delay}) {state} @{id(self):#x}>"


class Process(Event):
    """A running generator.  As an :class:`Event`, it triggers when the
    generator returns (value = the ``return`` value) or raises."""

    __slots__ = ("generator", "_waiting_on", "_interrupts", "_resume_cb")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        super().__init__(engine, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        # bind once: every wait registers this callback, and a fresh bound
        # method per yield is measurable allocation churn on the hot loop
        self._resume_cb = self._resume
        engine._schedule_now(self._resume_cb, None)

    @property
    def is_alive(self) -> bool:
        return not self._done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._done:
            return
        self._interrupts.append(Interrupt(cause))
        # Detach from the event we were waiting on; the stale callback
        # checks _waiting_on and becomes a no-op.
        self._waiting_on = None
        self.engine._schedule_now(self._step, _UNSET, None)

    def _resume(self, event: Optional[Event]) -> None:
        if self._done:
            return
        if event is not None and self._waiting_on is not event:
            return  # stale wake-up (we were interrupted away from it)
        self._waiting_on = None
        if event is None:
            self._step(None, None)
        elif event._exc is not None:
            self._step(_UNSET, event._exc)
        else:
            self._step(event._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            return
        engine = self.engine
        generator = self.generator
        prev = engine.current_process
        inline = engine._inline
        # The loop continues stepping inline when the yielded waitable has
        # already triggered (knob-gated; see Engine._inline), avoiding a
        # full scheduling round trip per already-done yield.
        while True:
            engine.current_process = self
            try:
                if self._interrupts:
                    target = generator.throw(self._interrupts.pop(0))
                elif exc is not None:
                    target = generator.throw(exc)
                else:
                    target = generator.send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as err:  # noqa: BLE001 - propagate to waiters
                if isinstance(err, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(err)
                return
            finally:
                engine.current_process = prev
            if not isinstance(target, Event):
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded {target!r}; only Event "
                        "instances (Timeout, Process, Event) may be yielded"
                    )
                )
                return
            self._waiting_on = target
            hooks = engine._hooks_waiting
            if hooks:
                for waiting in hooks:
                    waiting(self, target)
            if inline and target._done and not self._interrupts:
                self._waiting_on = None
                if target._exc is not None:
                    value, exc = _UNSET, target._exc
                else:
                    value, exc = target._value, None
                continue
            # inlined target.add_callback(self._resume_cb): this is the
            # single hottest callback registration in the simulator
            if target._done:
                engine._schedule_now(self._resume_cb, target)
            else:
                target._callbacks.append(self._resume_cb)
            return


class AllOf(Event):
    """Triggers when every child event has triggered; value is their list
    of values.  Fails fast on the first child failure."""

    __slots__ = ("_children", "_pending")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, name="AllOf")
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._done:
            return
        if child._exc is not None:
            self.fail(child._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Triggers with the value (or exception) of the first child event to
    complete; later completions are ignored.  The losing children keep
    running — callers that race a reply against a timeout must check which
    child actually triggered."""

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str = ""):
        super().__init__(engine, name=name or "AnyOf")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._done:
            return
        if child._exc is not None:
            self.fail(child._exc)
        else:
            self.succeed(child._value)


class Engine:
    """The event loop.

    Typical usage::

        eng = Engine()

        def hello():
            yield eng.timeout(5.0)
            return "done"

        proc = eng.process(hello())
        eng.run()
        assert eng.now == 5.0 and proc.value == "done"

    ``fastlane`` and ``inline`` select the same-time FIFO fast lane and
    the inline-resume optimisation; both default from the environment
    (``DEX_ENGINE_FASTLANE`` / ``DEX_ENGINE_INLINE``, default on) and both
    are verified order-preserving by the determinism differential tests.
    """

    __slots__ = (
        "now",
        "_queue",
        "_fastlane",
        "_seq",
        "_running",
        "_cancelled_entries",
        "seed",
        "_rng",
        "hooks",
        "_hooks_created",
        "_hooks_waiting",
        "_hooks_finished",
        "_hooks_pool_stall",
        "_hooks_pool_resume",
        "_hooks_sample",
        "_sample_interval",
        "_next_sample",
        "current_process",
        "tracer",
        "_fastlane_on",
        "_inline",
        "events_dispatched",
    )

    def __init__(
        self,
        seed: int = 0,
        fastlane: Optional[bool] = None,
        inline: Optional[bool] = None,
    ) -> None:
        self.now: float = 0.0
        self._queue: List[list] = []
        self._fastlane: deque = deque()
        self._seq = 0
        self._running = False
        #: cancelled Timeout entries still sitting in the queue; entries
        #: are tagged (fn slot nulled) and skipped with one ``is None``
        #: check, and the heap is compacted when they pile up
        self._cancelled_entries = 0
        #: master seed for this simulation; every stochastic choice (chaos
        #: schedules, workload init) must derive from it so runs are
        #: reproducible end to end
        self.seed = seed
        self._rng: Optional[Any] = None
        #: observers of process lifecycle (see :meth:`add_hook`); empty in
        #: normal runs, so every hook site is one falsy check.  The
        #: per-kind lists below are pre-bound methods populated at
        #: ``add_hook`` time so hot paths never getattr-probe a hook.
        self.hooks: List[Any] = []
        self._hooks_created: List[Callable] = []
        self._hooks_waiting: List[Callable] = []
        self._hooks_finished: List[Callable] = []
        self._hooks_pool_stall: List[Callable] = []
        self._hooks_pool_resume: List[Callable] = []
        #: periodic sim-time samplers (see :meth:`add_sampler`); with none
        #: registered the deadline stays +inf and the run loop's only
        #: obligation is one float compare per dispatch
        self._hooks_sample: List[Callable] = []
        self._sample_interval = 0.0
        self._next_sample = _INF
        #: the Process whose generator is currently executing (None between
        #: steps); the repro.obs tracer keys span stacks by this
        self.current_process: Optional[Any] = None
        #: the repro.obs Tracer attached to this engine, or None (tracing
        #: off); instrumented code guards on this single attribute
        self.tracer: Optional[Any] = None
        self._fastlane_on = (
            _env_knob("DEX_ENGINE_FASTLANE", True) if fastlane is None else fastlane
        )
        self._inline = (
            _env_knob("DEX_ENGINE_INLINE", True) if inline is None else inline
        )
        #: total dispatches across all run() calls (perf accounting)
        self.events_dispatched = 0

    @property
    def rng(self) -> Any:
        """The engine-owned seeded RNG (``numpy.random.Generator``).

        Created lazily so simulations that never draw randomness pay
        nothing; the numpy import stays out of the module top level to keep
        the core engine dependency-free."""
        if self._rng is None:
            from numpy.random import default_rng

            self._rng = default_rng(self.seed)
        return self._rng

    def add_hook(self, hook: Any) -> None:
        """Register a process-lifecycle observer.  A hook may implement
        ``on_process_created(process)``, ``on_process_waiting(process,
        event)``, ``on_process_finished(process)``, ``on_pool_stall(pool,
        process)``, and ``on_pool_resume(pool, process)``; the engine calls
        whichever exist.  Methods are bound once here so dispatch sites
        iterate pre-built lists instead of getattr-probing per call.  Used
        by the repro.check and repro.obs diagnostics layers."""
        self.hooks.append(hook)
        for attr, bucket in (
            ("on_process_created", self._hooks_created),
            ("on_process_waiting", self._hooks_waiting),
            ("on_process_finished", self._hooks_finished),
            ("on_pool_stall", self._hooks_pool_stall),
            ("on_pool_resume", self._hooks_pool_resume),
        ):
            method = getattr(hook, attr, None)
            if method is not None:
                bucket.append(method)

    def add_sampler(self, fire: Callable[[float], None], interval_us: float) -> None:
        """Register a periodic sim-time sampler (the DexScope hook).

        *fire(deadline)* runs **between** dispatches, at the first dispatch
        whose timestamp reaches each grid deadline ``k * interval_us`` — a
        deterministic function of the event stream.  Samplers never
        schedule events, consume sequence numbers, or advance the clock, so
        a sampled run is bit-identical to an unsampled one.  Idle gaps
        produce one firing, not a catch-up storm: after firing, the grid
        jumps past the current instant."""
        if interval_us <= 0:
            raise SimulationError(
                f"sampler interval must be positive: {interval_us}"
            )
        if self._hooks_sample and interval_us != self._sample_interval:
            raise SimulationError("all samplers share one grid interval")
        self._sample_interval = float(interval_us)
        if self._next_sample == _INF:
            self._next_sample = self.now + self._sample_interval
        self._hooks_sample.append(fire)

    def _fire_samplers(self, when: float) -> float:
        """Fire every sampler at the pending grid deadline, then advance
        the grid past *when*; returns the new deadline."""
        deadline = self._next_sample
        for fire in self._hooks_sample:
            fire(deadline)
        interval = self._sample_interval
        periods = int((when - deadline) / interval) + 1
        nxt = deadline + periods * interval
        while nxt <= when:  # float rounding can land short of `when`
            nxt += interval
        self._next_sample = nxt
        return nxt

    # -- scheduling primitives ------------------------------------------

    def _schedule_at(self, when: float, fn: Callable, *args: Any) -> list:
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        self._seq += 1
        entry = [when, self._seq, fn, args]
        heapq.heappush(self._queue, entry)
        return entry

    def _schedule_now(self, fn: Callable, *args: Any) -> None:
        if self._fastlane_on:
            self._seq += 1
            self._fastlane.append([self.now, self._seq, fn, args])
        else:
            self._schedule_at(self.now, fn, *args)

    def _schedule_callbacks(self, event: Event) -> None:
        callbacks = event._callbacks
        event._callbacks = None
        if callbacks:
            # the single-callback case (one waiter) dispatches the callback
            # directly at the identical queue position, skipping the
            # _run_callbacks trampoline; the append is _schedule_now inlined
            if self._fastlane_on:
                self._seq += 1
                if len(callbacks) == 1:
                    self._fastlane.append(
                        [self.now, self._seq, callbacks[0], (event,)]
                    )
                else:
                    self._fastlane.append(
                        [self.now, self._seq, self._run_callbacks, (event, callbacks)]
                    )
            elif len(callbacks) == 1:
                self._schedule_at(self.now, callbacks[0], event)
            else:
                self._schedule_at(self.now, self._run_callbacks, event, callbacks)

    @staticmethod
    def _run_callbacks(event: Event, callbacks: List[Callable]) -> None:
        for fn in callbacks:
            fn(event)

    def _compact(self) -> None:
        """Drop tagged (cancelled) entries from the heap in one pass.

        In place: run() holds a local alias of the heap list."""
        self._queue[:] = [entry for entry in self._queue if entry[2] is not None]
        heapq.heapify(self._queue)
        self._cancelled_entries = 0

    # -- public factories ------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        proc = Process(self, generator, name=name)
        if self.hooks:
            for created in self._hooks_created:
                created(proc)
            proc.add_callback(self._notify_finished)
        return proc

    def _notify_finished(self, proc: Event) -> None:
        for finished in self._hooks_finished:
            finished(proc)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event], name: str = "") -> AnyOf:
        return AnyOf(self, events, name=name)

    def trigger_at(self, when: float, event: Event, value: Any = None) -> None:
        """Succeed *event* at absolute simulated time *when*."""
        self._schedule_at(when, event.succeed, value)

    # -- main loop --------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Drain the event queue.

        Stops when the queue empties, when simulated time would pass
        *until*, or (as a runaway guard) after *max_events* dispatches.
        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        dispatched = 0
        queue = self._queue
        fastlane = self._fastlane
        heappop = heapq.heappop
        limit = _INF if until is None else until
        next_sample = self._next_sample
        try:
            while True:
                # merge the fast lane and the heap by comparing heads;
                # list comparison orders by (when, seq) and seq is unique
                if fastlane:
                    if queue and queue[0] < fastlane[0]:
                        entry = queue[0]
                        from_heap = True
                    else:
                        entry = fastlane[0]
                        from_heap = False
                elif queue:
                    entry = queue[0]
                    from_heap = True
                else:
                    if until is not None and until > self.now:
                        self.now = until
                    break
                when, _seq, fn, args = entry
                if fn is None:
                    # tagged (cancelled) entry: skip without advancing time
                    if from_heap:
                        heappop(queue)
                    else:
                        fastlane.popleft()
                    self._cancelled_entries -= 1
                    continue
                if when > limit:
                    self.now = until
                    # `until` may rewind the clock below pending same-time
                    # entries; spill the fast lane so its sortedness
                    # invariant survives for the next run() call
                    while fastlane:
                        heapq.heappush(queue, fastlane.popleft())
                    break
                if from_heap:
                    heappop(queue)
                else:
                    fastlane.popleft()
                self.now = when
                if when >= next_sample:
                    next_sample = self._fire_samplers(when)
                fn(*args)
                dispatched += 1
                if dispatched >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
        finally:
            self._running = False
            self.events_dispatched += dispatched
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn *generator*, run to completion, return its value."""
        proc = self.process(generator, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock: waiting on "
                "an event nobody triggers)"
            )
        return proc.value
