"""Deterministic discrete-event simulation engine.

The engine keeps a priority queue of ``(time, sequence, event)`` entries.
Simulated activities are generator functions wrapped in :class:`Process`;
whenever a process yields a waitable (:class:`Event`, :class:`Timeout`, or
another :class:`Process`), it is suspended until the waitable triggers, at
which point the waitable's value is sent back into the generator (or its
exception is thrown into it).

Time is a float in **microseconds**.  All ordering ties are broken by a
monotonically increasing sequence number, which makes runs bit-for-bit
reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

_UNSET = object()


class SimulationError(Exception):
    """Raised for illegal engine usage (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives the exception at its current yield
    point and may catch it to implement retries or cancellation.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts untriggered.  It is completed exactly once, either with
    :meth:`succeed` (delivering a value) or :meth:`fail` (delivering an
    exception).  Callbacks registered before completion run, in registration
    order, at the simulation time of the completion.
    """

    __slots__ = ("engine", "_value", "_exc", "_done", "_callbacks", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._value: Any = _UNSET
        self._exc: Optional[BaseException] = None
        self._done = False
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def ok(self) -> bool:
        return self._done and self._exc is None

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError(f"event {self!r} has not triggered yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._done:
            raise SimulationError(f"event {self!r} already triggered")
        self._done = True
        self._value = value
        self.engine._schedule_callbacks(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._done:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._done = True
        self._exc = exc
        self.engine._schedule_callbacks(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event completes (immediately-scheduled
        if it already has)."""
        if self._done:
            self.engine._schedule_now(lambda: fn(self))
        else:
            assert self._callbacks is not None
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} @{id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay", "_cancelled")

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(engine, name=f"Timeout({delay})")
        self.delay = delay
        self._cancelled = False
        engine._schedule_at(engine.now + delay, self._fire, value)

    def cancel(self) -> None:
        """Discard an untriggered timeout.  Its queue entry is skipped
        without advancing the clock, so an abandoned deadline (e.g. a retry
        timer whose reply arrived) does not distort the final sim time when
        :meth:`Engine.run` drains the queue."""
        if not self._done and not self._cancelled:
            self._cancelled = True
            self.engine._cancelled_entries += 1

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class Process(Event):
    """A running generator.  As an :class:`Event`, it triggers when the
    generator returns (value = the ``return`` value) or raises."""

    __slots__ = ("generator", "_waiting_on", "_interrupts")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        super().__init__(engine, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        engine._schedule_now(lambda: self._resume(None))

    @property
    def is_alive(self) -> bool:
        return not self._done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._done:
            return
        self._interrupts.append(Interrupt(cause))
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None:
            # Detach from the event we were waiting on; the stale callback
            # checks _waiting_on and becomes a no-op.
            pass
        self.engine._schedule_now(lambda: self._step(_UNSET, None))

    def _resume(self, event: Optional[Event]) -> None:
        if self._done:
            return
        if event is not None and self._waiting_on is not event:
            return  # stale wake-up (we were interrupted away from it)
        self._waiting_on = None
        if event is None:
            self._step(None, None)
        elif event._exc is not None:
            self._step(_UNSET, event._exc)
        else:
            self._step(event._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            return
        engine = self.engine
        prev = engine.current_process
        engine.current_process = self
        try:
            if self._interrupts:
                target = self.generator.throw(self._interrupts.pop(0))
            elif exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - propagate to waiters
            if isinstance(err, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(err)
            return
        finally:
            engine.current_process = prev
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; only Event "
                    "instances (Timeout, Process, Event) may be yielded"
                )
            )
            return
        self._waiting_on = target
        if self.engine.hooks:
            for hook in self.engine.hooks:
                waiting = getattr(hook, "on_process_waiting", None)
                if waiting is not None:
                    waiting(self, target)
        target.add_callback(self._resume)


class AllOf(Event):
    """Triggers when every child event has triggered; value is their list
    of values.  Fails fast on the first child failure."""

    __slots__ = ("_children", "_pending")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, name="AllOf")
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._done:
            return
        if child._exc is not None:
            self.fail(child._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Triggers with the value (or exception) of the first child event to
    complete; later completions are ignored.  The losing children keep
    running — callers that race a reply against a timeout must check which
    child actually triggered."""

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str = ""):
        super().__init__(engine, name=name or "AnyOf")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._done:
            return
        if child._exc is not None:
            self.fail(child._exc)
        else:
            self.succeed(child._value)


class Engine:
    """The event loop.

    Typical usage::

        eng = Engine()

        def hello():
            yield eng.timeout(5.0)
            return "done"

        proc = eng.process(hello())
        eng.run()
        assert eng.now == 5.0 and proc.value == "done"
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self._queue: List = []
        self._seq = 0
        self._running = False
        #: cancelled Timeout entries still sitting in the queue; the run
        #: loop only pays the skip check while this is non-zero
        self._cancelled_entries = 0
        #: master seed for this simulation; every stochastic choice (chaos
        #: schedules, workload init) must derive from it so runs are
        #: reproducible end to end
        self.seed = seed
        self._rng: Optional[Any] = None
        #: observers of process lifecycle (see :meth:`add_hook`); empty in
        #: normal runs, so every hook site is one falsy check
        self.hooks: List[Any] = []
        #: the Process whose generator is currently executing (None between
        #: steps); the repro.obs tracer keys span stacks by this
        self.current_process: Optional[Any] = None
        #: the repro.obs Tracer attached to this engine, or None (tracing
        #: off); instrumented code guards on this single attribute
        self.tracer: Optional[Any] = None

    @property
    def rng(self) -> Any:
        """The engine-owned seeded RNG (``numpy.random.Generator``).

        Created lazily so simulations that never draw randomness pay
        nothing; the numpy import stays out of the module top level to keep
        the core engine dependency-free."""
        if self._rng is None:
            from numpy.random import default_rng

            self._rng = default_rng(self.seed)
        return self._rng

    def add_hook(self, hook: Any) -> None:
        """Register a process-lifecycle observer.  A hook may implement
        ``on_process_created(process)``, ``on_process_waiting(process,
        event)``, and ``on_process_finished(process)``; the engine calls
        whichever exist.  Used by the repro.check diagnostics layer."""
        self.hooks.append(hook)

    # -- scheduling primitives ------------------------------------------

    def _schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, fn, args))

    def _schedule_now(self, fn: Callable, *args: Any) -> None:
        self._schedule_at(self.now, fn, *args)

    def _schedule_callbacks(self, event: Event) -> None:
        callbacks, event._callbacks = event._callbacks, None
        if callbacks:
            self._schedule_now(self._run_callbacks, event, callbacks)

    @staticmethod
    def _run_callbacks(event: Event, callbacks: List[Callable]) -> None:
        for fn in callbacks:
            fn(event)

    # -- public factories ------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        proc = Process(self, generator, name=name)
        if self.hooks:
            for hook in self.hooks:
                created = getattr(hook, "on_process_created", None)
                if created is not None:
                    created(proc)
            proc.add_callback(self._notify_finished)
        return proc

    def _notify_finished(self, proc: Event) -> None:
        for hook in self.hooks:
            finished = getattr(hook, "on_process_finished", None)
            if finished is not None:
                finished(proc)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event], name: str = "") -> AnyOf:
        return AnyOf(self, events, name=name)

    def trigger_at(self, when: float, event: Event, value: Any = None) -> None:
        """Succeed *event* at absolute simulated time *when*."""
        self._schedule_at(when, event.succeed, value)

    # -- main loop --------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Drain the event queue.

        Stops when the queue empties, when simulated time would pass
        *until*, or (as a runaway guard) after *max_events* dispatches.
        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self._queue:
                when, _seq, fn, args = self._queue[0]
                if self._cancelled_entries:
                    owner = getattr(fn, "__self__", None)
                    if owner is not None and getattr(owner, "_cancelled", False):
                        heapq.heappop(self._queue)
                        self._cancelled_entries -= 1
                        continue
                if until is not None and when > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                self.now = when
                fn(*args)
                dispatched += 1
                if dispatched >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
            else:
                if until is not None:
                    self.now = max(self.now, until)
        finally:
            self._running = False
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn *generator*, run to completion, return its value."""
        proc = self.process(generator, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock: waiting on "
                "an event nobody triggers)"
            )
        return proc.value
