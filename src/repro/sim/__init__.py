"""Discrete-event simulation kernel.

This package is the bottom-most substrate of the reproduction: a small,
deterministic discrete-event engine in the style of SimPy.  Simulated
activities are Python generators that ``yield`` waitables (timeouts, events,
other processes, resource requests); the engine advances a virtual clock in
microseconds and resumes generators when their waitables complete.

Everything above — the interconnect, the virtual-memory subsystem, the DeX
protocol, and the applications — runs as processes on this engine.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import FairShareResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "FairShareResource",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
