"""Contention primitives for the simulation kernel.

Three resources cover everything the rack model needs:

* :class:`FairShareResource` — processor-sharing (GPS) service of divisible
  work, used for NIC link bandwidth and per-node DRAM bandwidth.  ``k``
  concurrent jobs each progress at ``capacity(k) / k``; job completions and
  arrivals recompute the schedule exactly, so the model is not a timestep
  approximation.
* :class:`Resource` — a counted FIFO resource (semaphore), used for CPU
  cores and bounded buffer pools.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``, used
  for message queues and work-delegation mailboxes.

Hot-path notes: event display names are precomputed per resource (no
per-call f-strings), an uncontended :meth:`Resource.acquire` hands out a
shared pre-granted event instead of allocating one per call, and
:meth:`FairShareResource.consume` takes a batched single-job fast path
when the resource is idle — all verified bit-for-bit against the exact
per-arrival GPS recomputation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.sim.engine import Engine, Event, SimulationError

_EPS = 1e-9


class _ShareJob:
    __slots__ = ("remaining", "event", "tag")

    def __init__(self, remaining: float, event: Event, tag: Any):
        self.remaining = remaining
        self.event = event
        self.tag = tag


class FairShareResource:
    """Exact generalized-processor-sharing service of divisible jobs.

    ``capacity`` is in work units per microsecond (e.g. bytes/us for a
    memory channel).  An optional ``contention`` callable maps the number of
    active jobs to an *effective* aggregate capacity, modelling throughput
    degradation under many concurrent streams (memory-controller row-buffer
    conflicts etc.); it defaults to the ideal constant capacity.
    """

    __slots__ = (
        "engine",
        "capacity",
        "name",
        "_consume_name",
        "_contention",
        "_jobs",
        "_last_update",
        "_timer_id",
        "total_served",
    )

    def __init__(
        self,
        engine: Engine,
        capacity: float,
        contention: Optional[Callable[[int], float]] = None,
        name: str = "",
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._consume_name = f"{name}.consume"
        self._contention = contention
        self._jobs: List[_ShareJob] = []
        self._last_update = 0.0
        self._timer_id = 0  # invalidates stale completion timers
        self.total_served = 0.0

    # -- public API -------------------------------------------------------

    def consume(self, amount: float, tag: Any = None) -> Event:
        """Return an event that triggers once *amount* units of service
        have been delivered to this job under fair sharing."""
        event = Event(self.engine, self._consume_name)
        if amount <= 0:
            event.succeed()
            return event
        if not self._jobs:
            # batched idle-arrival fast path: with no competing jobs the
            # advance pass charges nothing and the schedule is a single
            # completion timer.  Arithmetic mirrors _advance/_reschedule
            # exactly (including the capacity/1 division) so sim times are
            # bit-identical to the general path.
            engine = self.engine
            now = engine.now
            self._last_update = now
            remaining = float(amount)
            self._jobs.append(_ShareJob(remaining, event, tag))
            if remaining > _EPS:
                rate = self.effective_capacity(1) / 1
                when = now + remaining / rate
                if when > now:
                    self._timer_id += 1
                    engine._schedule_at(when, self._on_timer, self._timer_id)
                    return event
            # sub-resolution job: fall back to the general settlement
            self._reschedule()
            return event
        self._advance()
        self._jobs.append(_ShareJob(float(amount), event, tag))
        self._reschedule()
        return event

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def effective_capacity(self, n_jobs: Optional[int] = None) -> float:
        n = len(self._jobs) if n_jobs is None else n_jobs
        if n == 0:
            return self.capacity
        if self._contention is None:
            return self.capacity
        cap = self._contention(n)
        if cap <= 0:
            raise SimulationError(f"contention model returned {cap} for n={n}")
        return cap

    # -- internals ----------------------------------------------------------

    def _rate_per_job(self) -> float:
        n = len(self._jobs)
        if n == 0:
            return 0.0
        return self.effective_capacity(n) / n

    def _advance(self) -> None:
        """Charge service delivered since the last state change."""
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._jobs:
            return
        served = self._rate_per_job() * dt
        self.total_served += served * len(self._jobs)
        for job in self._jobs:
            job.remaining -= served

    def _reschedule(self) -> None:
        """Schedule the next completion (invalidating any stale timer)."""
        self._timer_id += 1
        while True:
            jobs = self._jobs
            if any(j.remaining <= _EPS for j in jobs):
                finished = [j for j in jobs if j.remaining <= _EPS]
                self._jobs = [j for j in jobs if j.remaining > _EPS]
                for job in finished:
                    job.event.succeed()
                jobs = self._jobs
            if not jobs:
                return
            rate = self.effective_capacity(len(jobs)) / len(jobs)
            next_remaining = min(j.remaining for j in jobs)
            when = self.engine.now + next_remaining / rate
            if when <= self.engine.now:
                # the remaining service is below float resolution at the
                # current clock value: treat those jobs as served now,
                # otherwise the timer would respawn at the same instant
                for job in jobs:
                    if job.remaining <= next_remaining + _EPS:
                        job.remaining = 0.0
                continue
            self.engine._schedule_at(when, self._on_timer, self._timer_id)
            return

    def _on_timer(self, timer_id: int) -> None:
        if timer_id != self._timer_id:
            return  # superseded by an arrival or another completion
        self._advance()
        self._reschedule()


class Resource:
    """A counted FIFO resource: up to *capacity* concurrent holders.

    ``acquire()`` returns an event that triggers when a slot is granted;
    the holder must call ``release()`` exactly once.  Uncontended grants
    reuse one shared already-triggered event: the engine treats a done
    event identically however many waiters yield it, so per-call
    allocation would buy nothing.
    """

    __slots__ = ("engine", "capacity", "name", "_in_use", "_waiters", "_granted")

    def __init__(self, engine: Engine, capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        granted = Event(engine, f"{name}.acquire")
        granted._done = True
        granted._value = None
        granted._callbacks = None
        self._granted = granted

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        if self._in_use < self.capacity:
            self._in_use += 1
            return self._granted
        event = Event(self.engine, self._granted.name)
        self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def held(self):
        """Generator context: ``yield from resource.held()`` is not possible
        in Python; instead use ``yield resource.acquire()`` / ``release()``.
        Provided for documentation symmetry only."""
        raise NotImplementedError(
            "acquire()/release() explicitly; generators cannot use with-blocks "
            "across yields"
        )


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` is immediate; ``get`` returns an event whose value is the next
    item (triggering immediately if one is queued).  Items are matched to
    getters strictly in FIFO order on both sides.
    """

    __slots__ = ("engine", "name", "_get_name", "_items", "_getters")

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._get_name = f"{name}.get"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.engine, self._get_name)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None
