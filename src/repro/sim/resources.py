"""Contention primitives for the simulation kernel.

Three resources cover everything the rack model needs:

* :class:`FairShareResource` — processor-sharing (GPS) service of divisible
  work, used for NIC link bandwidth and per-node DRAM bandwidth.  ``k``
  concurrent jobs each progress at ``capacity(k) / k``; job completions and
  arrivals recompute the schedule exactly, so the model is not a timestep
  approximation.
* :class:`Resource` — a counted FIFO resource (semaphore), used for CPU
  cores and bounded buffer pools.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``, used
  for message queues and work-delegation mailboxes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.sim.engine import Engine, Event, SimulationError

_EPS = 1e-9


class _ShareJob:
    __slots__ = ("remaining", "event", "tag")

    def __init__(self, remaining: float, event: Event, tag: Any):
        self.remaining = remaining
        self.event = event
        self.tag = tag


class FairShareResource:
    """Exact generalized-processor-sharing service of divisible jobs.

    ``capacity`` is in work units per microsecond (e.g. bytes/us for a
    memory channel).  An optional ``contention`` callable maps the number of
    active jobs to an *effective* aggregate capacity, modelling throughput
    degradation under many concurrent streams (memory-controller row-buffer
    conflicts etc.); it defaults to the ideal constant capacity.
    """

    def __init__(
        self,
        engine: Engine,
        capacity: float,
        contention: Optional[Callable[[int], float]] = None,
        name: str = "",
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._contention = contention
        self._jobs: List[_ShareJob] = []
        self._last_update = 0.0
        self._timer_id = 0  # invalidates stale completion timers
        self.total_served = 0.0

    # -- public API -------------------------------------------------------

    def consume(self, amount: float, tag: Any = None) -> Event:
        """Return an event that triggers once *amount* units of service
        have been delivered to this job under fair sharing."""
        event = self.engine.event(name=f"{self.name}.consume({amount})")
        if amount <= 0:
            event.succeed()
            return event
        self._advance()
        self._jobs.append(_ShareJob(float(amount), event, tag))
        self._reschedule()
        return event

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def effective_capacity(self, n_jobs: Optional[int] = None) -> float:
        n = len(self._jobs) if n_jobs is None else n_jobs
        if n == 0:
            return self.capacity
        if self._contention is None:
            return self.capacity
        cap = self._contention(n)
        if cap <= 0:
            raise SimulationError(f"contention model returned {cap} for n={n}")
        return cap

    # -- internals ----------------------------------------------------------

    def _rate_per_job(self) -> float:
        n = len(self._jobs)
        if n == 0:
            return 0.0
        return self.effective_capacity(n) / n

    def _advance(self) -> None:
        """Charge service delivered since the last state change."""
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._jobs:
            return
        served = self._rate_per_job() * dt
        self.total_served += served * len(self._jobs)
        for job in self._jobs:
            job.remaining -= served

    def _reschedule(self) -> None:
        """Schedule the next completion (invalidating any stale timer)."""
        self._timer_id += 1
        while True:
            finished = [j for j in self._jobs if j.remaining <= _EPS]
            if finished:
                self._jobs = [j for j in self._jobs if j.remaining > _EPS]
                for job in finished:
                    job.event.succeed()
            if not self._jobs:
                return
            rate = self._rate_per_job()
            next_remaining = min(j.remaining for j in self._jobs)
            when = self.engine.now + next_remaining / rate
            if when <= self.engine.now:
                # the remaining service is below float resolution at the
                # current clock value: treat those jobs as served now,
                # otherwise the timer would respawn at the same instant
                for job in self._jobs:
                    if job.remaining <= next_remaining + _EPS:
                        job.remaining = 0.0
                continue
            self.engine._schedule_at(when, self._on_timer, self._timer_id)
            return

    def _on_timer(self, timer_id: int) -> None:
        if timer_id != self._timer_id:
            return  # superseded by an arrival or another completion
        self._advance()
        self._reschedule()


class Resource:
    """A counted FIFO resource: up to *capacity* concurrent holders.

    ``acquire()`` returns an event that triggers when a slot is granted;
    the holder must call ``release()`` exactly once.
    """

    def __init__(self, engine: Engine, capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        event = self.engine.event(name=f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def held(self):
        """Generator context: ``yield from resource.held()`` is not possible
        in Python; instead use ``yield resource.acquire()`` / ``release()``.
        Provided for documentation symmetry only."""
        raise NotImplementedError(
            "acquire()/release() explicitly; generators cannot use with-blocks "
            "across yields"
        )


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` is immediate; ``get`` returns an event whose value is the next
    item (triggering immediately if one is queued).  Items are matched to
    getters strictly in FIFO order on both sides.
    """

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = self.engine.event(name=f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None
