"""Shared retransmission policy for the reliable request/reply transport.

Every retransmit loop in the tree must derive its delays from
:func:`backoff_delay` and bound its attempts (the ``retry-discipline`` lint
rule rejects ad-hoc exponential backoff).  The per-message-class base
timeouts live in :data:`repro.net.messages.TIMEOUT_CLASSES` plus the
``retry_timeout_*_us`` fields of :class:`repro.params.SimParams`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.messages import TIMEOUT_CLASSES, MsgType
from repro.params import SimParams


def backoff_delay(base_us: float, attempt: int, cap_us: float) -> float:
    """Capped exponential backoff: ``base * 2^attempt``, clamped to *cap*.

    ``attempt`` is 0 for the wait before the first retransmission.
    """
    return min(base_us * (2.0 ** attempt), cap_us)


def timeout_base_us(params: SimParams, msg_type: MsgType) -> float:
    """The reply timeout a request of *msg_type* starts from."""
    cls = TIMEOUT_CLASSES.get(msg_type, "heavy")
    if cls == "ctl":
        return params.retry_timeout_ctl_us
    if cls == "data":
        return params.retry_timeout_data_us
    return params.retry_timeout_heavy_us


def inflight_requests(chaos: Optional[Any]) -> int:
    """Reliable requests currently awaiting a reply — the retry-layer
    in-flight count DexScope samples.  The reliable transport only exists
    with fault injection on; with *chaos* ``None`` the plain single-shot
    request path tracks nothing, so the count is 0."""
    return 0 if chaos is None else chaos.inflight_requests()
