"""Message dispatch: the receive side of the verb path.

Each node runs a :class:`Router`.  Incoming messages either complete a
pending RPC (when ``reply_to`` matches a registered request) or are handed
to the handler registered for their type; handlers are generator functions
and run as independent simulation processes, so a node can service many
protocol requests concurrently — just like the kernel message handlers in
the paper's messaging layer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Generator, Optional

from repro.net.messages import TIMEOUT_CLASSES, Message, MsgType
from repro.sim import Engine, Event

Handler = Callable[[Message], Generator]

#: bound on the responder-side duplicate filter (msg_id -> cached reply);
#: old entries age out FIFO, which is safe because a requester only
#: retransmits while its bounded retry loop is still running
_SEEN_CAP = 4096


class RouterError(Exception):
    """A message arrived with no registered handler."""


class Router:
    """Per-node demultiplexer for incoming messages."""

    def __init__(self, engine: Engine, node_id: int):
        self.engine = engine
        self.node_id = node_id
        self._handlers: Dict[MsgType, Handler] = {}
        self._pending: Dict[int, Event] = {}
        self.dispatched = 0
        self.replies_matched = 0
        # reliable-transport state; dormant (None) unless fault injection
        # is enabled — see attach_chaos()
        self.chaos = None
        self.net = None
        #: request msg_id -> cached reply (None while the handler runs);
        #: the responder half of idempotent retransmission
        self._seen: "OrderedDict[int, Optional[Message]]" = OrderedDict()
        self.duplicates_dropped = 0
        #: per-type handler process names, built once — the dispatch hot
        #: path must not re-render an f-string per message
        self._proc_names: Dict[MsgType, str] = {}

    def attach_chaos(self, chaos, net) -> None:
        """Enable the responder side of the reliable transport: duplicate
        request suppression, REQUEST_ACKs for in-flight handlers, and
        idempotent re-sends of cached replies."""
        self.chaos = chaos
        self.net = net

    def register(self, msg_type: MsgType, handler: Handler) -> None:
        if msg_type in self._handlers:
            raise RouterError(
                f"node {self.node_id}: handler for {msg_type} already registered"
            )
        self._handlers[msg_type] = handler

    def expect_reply(self, msg_id: int) -> Event:
        event = self.engine.event(name="reply")
        self._pending[msg_id] = event
        return event

    def cancel_reply(self, msg_id: int) -> None:
        self._pending.pop(msg_id, None)

    def dispatch(self, msg: Message) -> None:
        if msg.reply_to is not None:
            waiter = self._pending.pop(msg.reply_to, None)
            if waiter is not None:
                self.replies_matched += 1
                waiter.succeed(msg)
                return
            # a reply whose requester gave up; fall through to a typed
            # handler if one exists, otherwise drop it silently
        elif self.chaos is not None:
            # responder-side duplicate suppression: a retransmitted request
            # (same msg_id) must not re-execute its handler
            if msg.msg_id in self._seen:
                self._on_duplicate(msg)
                return
            self._seen[msg.msg_id] = None
            while len(self._seen) > _SEEN_CAP:
                self._seen.popitem(last=False)
        handler = self._handlers.get(msg.msg_type)
        if handler is None:
            if msg.reply_to is not None:
                return  # orphaned reply
            # raise from a bare scheduled callback so the error escapes
            # engine.run() instead of silently failing the wire process
            error = RouterError(
                f"node {self.node_id}: no handler for {msg.msg_type} ({msg!r})"
            )

            def _raise() -> None:
                raise error

            self.engine._schedule_now(_raise)
            return
        self.dispatched += 1
        name = self._proc_names.get(msg.msg_type)
        if name is None:
            name = self._proc_names[msg.msg_type] = (
                f"n{self.node_id}.{msg.msg_type.value}"
            )
        proc = self.engine.process(handler(msg), name=name)
        tracer = self.engine.tracer
        if tracer is not None:
            # open the handler's root span, parented on the trace context the
            # sender stamped into the message header; it closes when the
            # handler process finishes (engine hook), so one fault renders as
            # a single tree across requester, home, and victim nodes
            tracer.adopt(
                proc, f"rx.{msg.msg_type.value}",
                trace_id=msg.trace_id, parent_id=msg.parent_span,
                node=self.node_id, src=msg.src,
            )
        proc.add_callback(self._check_handler)

    def _on_duplicate(self, msg: Message) -> None:
        """A retransmission of a request this node already accepted."""
        self.duplicates_dropped += 1
        cached = self._seen.get(msg.msg_id)
        if cached is not None:
            # the reply went out and may have been lost: re-send a clone
            # (fresh msg_id so the fabric treats it as a new wire message,
            # same reply_to so it correlates at the requester; requester-
            # side suppression drops it if the original also arrived)
            self.chaos.replies_resent.inc()
            clone = Message(
                msg_type=cached.msg_type,
                src=cached.src,
                dst=cached.dst,
                payload=cached.payload,
                page_data=cached.page_data,
                reply_to=cached.reply_to,
                # keep the original reply's trace context: the resend must
                # stay inside the tree the request started, or the Perfetto
                # flow arrows break mid-trace under chaos
                trace_id=cached.trace_id,
                parent_span=cached.parent_span,
            )
            proc = self.net.post(clone)
            tracer = self.engine.tracer
            if tracer is not None and clone.trace_id is not None:
                # the posted send process starts with an empty span stack;
                # without adoption its net.send/net.wire spans would root a
                # fresh, disconnected trace
                tracer.adopt(
                    proc, "net.resend",
                    trace_id=clone.trace_id, parent_id=clone.parent_span,
                    node=self.node_id, msg_type=clone.msg_type.value,
                )
        elif msg.msg_type in TIMEOUT_CLASSES:
            # request-class message whose handler is still running (it may
            # legitimately block, e.g. a delegated futex wait): tell the
            # requester to keep waiting instead of declaring us dead
            self.chaos.request_acks.inc()
            ack = msg.make_reply(MsgType.REQUEST_ACK, {"ack_for": msg.msg_id})
            # same trace-continuity rule as resent replies: the ack answers
            # a request that already carries a trace context
            ack.trace_id = msg.trace_id
            ack.parent_span = msg.parent_span
            proc = self.net.post(ack)
            tracer = self.engine.tracer
            if tracer is not None and ack.trace_id is not None:
                tracer.adopt(
                    proc, "net.resend",
                    trace_id=ack.trace_id, parent_id=ack.parent_span,
                    node=self.node_id, msg_type=ack.msg_type.value,
                )
        # duplicates of one-way messages vanish silently

    def note_reply_sent(self, reply: Message) -> None:
        """Cache an outbound reply against its request id (called by the
        fabric's send path when fault injection is on)."""
        if reply.msg_type is MsgType.REQUEST_ACK:
            return  # not the real reply; the handler is still running
        if reply.reply_to in self._seen:
            self._seen[reply.reply_to] = reply

    def _check_handler(self, proc) -> None:
        """Handler processes have no waiters; surface their failures
        instead of letting a protocol bug turn into a silent deadlock."""
        if proc.ok:
            return
        error = proc._exc

        def _raise() -> None:
            raise error

        self.engine._schedule_now(_raise)
