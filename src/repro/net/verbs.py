"""Message dispatch: the receive side of the verb path.

Each node runs a :class:`Router`.  Incoming messages either complete a
pending RPC (when ``reply_to`` matches a registered request) or are handed
to the handler registered for their type; handlers are generator functions
and run as independent simulation processes, so a node can service many
protocol requests concurrently — just like the kernel message handlers in
the paper's messaging layer.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator

from repro.net.messages import Message, MsgType
from repro.sim import Engine, Event

Handler = Callable[[Message], Generator]


class RouterError(Exception):
    """A message arrived with no registered handler."""


class Router:
    """Per-node demultiplexer for incoming messages."""

    def __init__(self, engine: Engine, node_id: int):
        self.engine = engine
        self.node_id = node_id
        self._handlers: Dict[MsgType, Handler] = {}
        self._pending: Dict[int, Event] = {}
        self.dispatched = 0
        self.replies_matched = 0

    def register(self, msg_type: MsgType, handler: Handler) -> None:
        if msg_type in self._handlers:
            raise RouterError(
                f"node {self.node_id}: handler for {msg_type} already registered"
            )
        self._handlers[msg_type] = handler

    def expect_reply(self, msg_id: int) -> Event:
        event = self.engine.event(name=f"reply#{msg_id}")
        self._pending[msg_id] = event
        return event

    def cancel_reply(self, msg_id: int) -> None:
        self._pending.pop(msg_id, None)

    def dispatch(self, msg: Message) -> None:
        if msg.reply_to is not None:
            waiter = self._pending.pop(msg.reply_to, None)
            if waiter is not None:
                self.replies_matched += 1
                waiter.succeed(msg)
                return
            # a reply whose requester gave up; fall through to a typed
            # handler if one exists, otherwise drop it silently
        handler = self._handlers.get(msg.msg_type)
        if handler is None:
            if msg.reply_to is not None:
                return  # orphaned reply
            # raise from a bare scheduled callback so the error escapes
            # engine.run() instead of silently failing the wire process
            error = RouterError(
                f"node {self.node_id}: no handler for {msg.msg_type} ({msg!r})"
            )

            def _raise() -> None:
                raise error

            self.engine._schedule_now(_raise)
            return
        self.dispatched += 1
        proc = self.engine.process(
            handler(msg), name=f"n{self.node_id}.{msg.msg_type.value}"
        )
        tracer = self.engine.tracer
        if tracer is not None:
            # open the handler's root span, parented on the trace context the
            # sender stamped into the message header; it closes when the
            # handler process finishes (engine hook), so one fault renders as
            # a single tree across requester, home, and victim nodes
            tracer.adopt(
                proc, f"rx.{msg.msg_type.value}",
                trace_id=msg.trace_id, parent_id=msg.parent_span,
                node=self.node_id, src=msg.src,
            )
        proc.add_callback(self._check_handler)

    def _check_handler(self, proc) -> None:
        """Handler processes have no waiters; surface their failures
        instead of letting a protocol bug turn into a silent deadlock."""
        if proc.ok:
            return
        error = proc._exc

        def _raise() -> None:
            raise error

        self.engine._schedule_now(_raise)
