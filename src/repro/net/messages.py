"""Message taxonomy for the DeX protocol.

Messages are bimodal in size (§III-E): control messages are tens of bytes
and travel the verb path; page data is 4 KB and travels the RDMA path.  A
:class:`Message` optionally carries ``page_data``; the transport routes the
control part and the data part over the appropriate paths and delivers them
together.

Allocation discipline
---------------------
:class:`Message` is a ``slots=True`` dataclass, and the hot protocol paths
recycle message objects through a bounded freelist
(:func:`obtain_message` / :func:`recycle_message`, knob
``DEX_MSG_FREELIST``).  Obtaining from the freelist is always safe; the
*recycling* side is only reachable from well-defined death points:

* a request message dies when its correlated reply arrives at the
  requester — handlers must never retain a request past posting its
  reply (every handler in this repo replies as its final act);
* a reply message dies when the requester has extracted its fields.

Both points live behind :meth:`repro.net.fabric.Network` gates that are
closed whenever fault injection is enabled: the reliable transport
retransmits request objects and caches replies for idempotent re-send, so
under chaos no message is ever recycled.
"""

from __future__ import annotations

import enum
import itertools
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

_msg_ids = itertools.count(1)


class MsgType(enum.Enum):
    # thread migration (§III-A)
    MIGRATE = "migrate"                    # origin -> remote: execution context
    MIGRATE_BACK = "migrate_back"          # remote -> origin: updated context
    MIGRATE_DONE = "migrate_done"

    # work delegation (§III-A)
    DELEGATE = "delegate"                  # remote thread -> its origin pair
    DELEGATE_REPLY = "delegate_reply"

    # memory consistency protocol (§III-B, §III-C); requests are routed to
    # the page's *home* (the origin under the origin directory backend)
    PAGE_REQUEST = "page_request"          # remote -> home: read or write
    PAGE_GRANT = "page_grant"              # home -> remote: ownership (+data)
    PAGE_RETRY = "page_retry"              # home -> remote: lost the race
    PAGE_INVALIDATE = "page_invalidate"    # home -> owner: revoke ownership
    PAGE_INVALIDATE_ACK = "page_invalidate_ack"

    # home-routed directory layer (sharded backend)
    PAGE_HOME_LOOKUP = "page_home_lookup"  # remote -> origin: resolve vpn's home
    PAGE_HOME_INFO = "page_home_info"      # origin -> remote: the home node
    PAGE_REDIRECT = "page_redirect"        # non-home -> remote: stale hint, re-resolve

    # on-demand VMA synchronization (§III-D)
    VMA_QUERY = "vma_query"
    VMA_REPLY = "vma_reply"
    VMA_SHRINK = "vma_shrink"              # eager broadcast on munmap/downgrade

    # process lifecycle
    PROCESS_EXIT = "process_exit"

    # reliable transport & failure detection (see repro.chaos); only ever
    # on the wire when fault injection is enabled
    REQUEST_ACK = "request_ack"            # responder -> requester: duplicate
    #                                        request seen, handler still running
    LEASE_RENEW = "lease_renew"            # remote worker -> origin keepalive

    # microbenchmark / test traffic
    PING = "ping"
    PONG = "pong"


#: approximate wire size of the control part of each message, in bytes —
#: "control messages are small, ranging up to tens of bytes" (§III-E)
CONTROL_SIZES: Dict[MsgType, int] = {
    MsgType.MIGRATE: 192,          # pt_regs + identifiers
    MsgType.MIGRATE_BACK: 192,
    MsgType.MIGRATE_DONE: 24,
    MsgType.DELEGATE: 64,
    MsgType.DELEGATE_REPLY: 32,
    MsgType.PAGE_REQUEST: 40,
    MsgType.PAGE_GRANT: 48,
    MsgType.PAGE_RETRY: 24,
    MsgType.PAGE_INVALIDATE: 32,
    MsgType.PAGE_INVALIDATE_ACK: 24,
    MsgType.PAGE_HOME_LOOKUP: 24,
    MsgType.PAGE_HOME_INFO: 24,
    MsgType.PAGE_REDIRECT: 24,
    MsgType.VMA_QUERY: 32,
    MsgType.VMA_REPLY: 64,
    MsgType.VMA_SHRINK: 48,
    MsgType.PROCESS_EXIT: 16,
    MsgType.REQUEST_ACK: 16,
    MsgType.LEASE_RENEW: 24,
    MsgType.PING: 16,
    MsgType.PONG: 16,
}


#: retry-timeout class of every request-class message (one that a sender
#: awaits a correlated reply for).  The class picks the reply timeout the
#: retransmission loop starts from (SimParams.retry_timeout_<class>_us):
#: "ctl" for small control round-trips, "data" for replies that may carry a
#: page or legitimately wait out an in-flight install, "heavy" for
#: migration/delegation round-trips whose handlers do real work.  The
#: retry-discipline lint rule requires every request-class MsgType to
#: appear here.
TIMEOUT_CLASSES: Dict[MsgType, str] = {
    MsgType.MIGRATE: "heavy",
    MsgType.MIGRATE_BACK: "heavy",
    MsgType.DELEGATE: "heavy",
    MsgType.PAGE_REQUEST: "data",
    MsgType.PAGE_INVALIDATE: "data",
    MsgType.PAGE_HOME_LOOKUP: "ctl",
    MsgType.VMA_QUERY: "ctl",
    MsgType.VMA_SHRINK: "ctl",
    MsgType.PING: "ctl",
}


@dataclass(slots=True)
class Message:
    """One unit of inter-node communication.

    ``payload`` is a plain dict of protocol fields.  ``page_data``, when
    present, is a full page of real bytes and is shipped over the
    large-transfer path.  ``reply_to`` correlates RPC responses with the
    pending request at the sender.
    """

    msg_type: MsgType
    src: int
    dst: int
    payload: Dict[str, Any] = field(default_factory=dict)
    page_data: Optional[bytes] = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    reply_to: Optional[int] = None
    #: causal-trace context (repro.obs), stamped by the fabric at send time
    #: when tracing is on.  These are the ONLY sanctioned carriers of trace
    #: ids between nodes (the span-discipline lint enforces it); they model
    #: reserved header bytes, so they don't count toward CONTROL_SIZES.
    trace_id: Optional[int] = None
    parent_span: Optional[int] = None

    @property
    def control_bytes(self) -> int:
        return CONTROL_SIZES.get(self.msg_type, 48)

    @property
    def data_bytes(self) -> int:
        return len(self.page_data) if self.page_data is not None else 0

    def make_reply(
        self,
        msg_type: MsgType,
        payload: Optional[Dict[str, Any]] = None,
        page_data: Optional[bytes] = None,
    ) -> "Message":
        return obtain_message(
            msg_type,
            src=self.dst,
            dst=self.src,
            payload=payload,
            page_data=page_data,
            reply_to=self.msg_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        data = f" +{self.data_bytes}B" if self.page_data is not None else ""
        return (
            f"<Msg {self.msg_type.value} {self.src}->{self.dst} "
            f"#{self.msg_id}{data}>"
        )


# ----------------------------------------------------------------------
# bounded freelist
# ----------------------------------------------------------------------

def _env_knob(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no", "")


#: process-wide default; Engine/Network tests can override per instance
FREELIST_DEFAULT = _env_knob("DEX_MSG_FREELIST", True)

#: parked messages never exceed this (a rack sim has bounded in-flight
#: traffic; anything beyond the cap is left to the garbage collector)
_FREELIST_CAP = 1024

_freelist: List[Message] = []


def obtain_message(
    msg_type: MsgType,
    src: int,
    dst: int,
    payload: Optional[Dict[str, Any]] = None,
    page_data: Optional[bytes] = None,
    reply_to: Optional[int] = None,
) -> Message:
    """A :class:`Message`, reinitialised from the freelist when possible.

    Freshly stamps ``msg_id`` from the global counter either way, so the
    wire protocol cannot distinguish a recycled object from a new one —
    runs with the freelist on and off are bit-identical.
    """
    if _freelist:
        msg = _freelist.pop()
        msg.msg_type = msg_type
        msg.src = src
        msg.dst = dst
        msg.payload = payload if payload is not None else {}
        msg.page_data = page_data
        msg.msg_id = next(_msg_ids)
        msg.reply_to = reply_to
        msg.trace_id = None
        msg.parent_span = None
        return msg
    return Message(
        msg_type,
        src,
        dst,
        payload if payload is not None else {},
        page_data,
        reply_to=reply_to,
    )


def recycle_message(msg: Message) -> None:
    """Park a dead message for reuse.  Callers must hold the *only* live
    reference; :class:`repro.net.fabric.Network` enforces this by never
    recycling when fault injection is enabled (the reliable transport
    caches and retransmits message objects)."""
    if len(_freelist) < _FREELIST_CAP:
        msg.payload = None  # type: ignore[assignment] — drop caller-owned refs
        msg.page_data = None
        _freelist.append(msg)


def freelist_size() -> int:
    """Current number of parked messages (diagnostics/tests)."""
    return len(_freelist)


#: shared payloads for fixed single-field replies; receivers treat
#: payloads as read-only (there is no payload mutation in the tree), so
#: one dict per outcome saves an allocation on every retry/redirect/ack
PAYLOAD_RETRY: Dict[str, Any] = {"outcome": "retry"}
PAYLOAD_REDIRECT: Dict[str, Any] = {"outcome": "redirect"}
PAYLOAD_ACK_OK: Dict[str, Any] = {"ok": True}
