"""InfiniBand-like interconnect substrate (§III-E).

The messaging layer mirrors the paper's design: per-node-pair Reliable
Connection channels; small control messages travel the VERB send/receive
path using pre-registered **send/receive buffer pools** (ring buffers of
DMA-mapped chunks, so the costly DMA mapping happens once at setup); 4 KB
page data travels over **RDMA** into a pre-registered per-connection **RDMA
sink** and is memcpy'd to its final frame — the hybrid that beats per-page
region registration.

Latency and bandwidth are charged against the simulation clock through
fair-share NIC resources, so concurrent protocol traffic contends the way
it would on a real HCA.
"""

from repro.net.buffers import BufferPool, RdmaSink
from repro.net.fabric import Connection, Network, NodeNIC, Router
from repro.net.messages import TIMEOUT_CLASSES, Message, MsgType
from repro.net.retry import backoff_delay, timeout_base_us

__all__ = [
    "BufferPool",
    "Connection",
    "Message",
    "MsgType",
    "Network",
    "NodeNIC",
    "RdmaSink",
    "Router",
    "TIMEOUT_CLASSES",
    "backoff_delay",
    "timeout_base_us",
]
