"""The rack fabric: NICs, RC connections, and the send path.

:class:`Network` owns one :class:`NodeNIC` and one :class:`Router` per node
and one directional :class:`Connection` per ordered node pair, established
at "boot" exactly as the paper describes ("at system boot-up time, nodes
read in a configuration to establish a communication channel for each node
pair under the InfiniBand Reliable Connection mode", §III-E).

A message send charges: send-pool chunk acquisition (stalling under
exhaustion), verb posting cost, data-path preparation when page data is
attached, fair-share link bandwidth for the full wire size, propagation
latency, receive-pool chunk + completion handling at the receiver, and the
data-path landing cost.  Delivery hands the message to the receiver's
router.  Senders return as soon as the send is posted — completions are
asynchronous, as on a real HCA.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.errors import NodeFailedError
from repro.net import rdma
from repro.net import messages as _messages
from repro.net.buffers import BufferPool, RdmaSink
from repro.net.messages import Message, MsgType, recycle_message
from repro.net.retry import backoff_delay, timeout_base_us
from repro.net.verbs import Router
from repro.obs.tracing import maybe_span
from repro.params import SimParams
from repro.sim import Engine, FairShareResource


class NodeNIC:
    """Per-node host channel adaptor: fair-share transmit bandwidth."""

    def __init__(self, engine: Engine, node_id: int, params: SimParams):
        self.node_id = node_id
        self.tx = FairShareResource(
            engine, params.link_bandwidth, name=f"n{node_id}.tx"
        )


class Connection:
    """A directional RC channel with its pools (send pool at the source,
    receive pool and RDMA sink at the destination)."""

    def __init__(self, engine: Engine, src: int, dst: int, params: SimParams):
        self.engine = engine
        self.src = src
        self.dst = dst
        self.params = params
        tag = f"c{src}->{dst}"
        self.send_pool = BufferPool(
            engine, params.send_pool_chunks, params.pool_chunk_bytes, f"{tag}.send"
        )
        self.recv_pool = BufferPool(
            engine, params.recv_pool_chunks, params.pool_chunk_bytes, f"{tag}.recv"
        )
        self.rdma_sink = RdmaSink(
            engine, params.rdma_sink_chunks, params.rdma_sink_slot_bytes, f"{tag}.sink"
        )
        self.messages = 0
        self.bytes_on_wire = 0
        #: tail of the in-order delivery chain: RC connections deliver in
        #: post order, so each message waits for its predecessor's dispatch
        self._delivery_tail = None


class Network:
    """All fabric state plus the public send/request API."""

    def __init__(
        self, engine: Engine, num_nodes: int, params: SimParams, chaos=None,
    ):
        if num_nodes < 1:
            raise ValueError(f"need at least one node, got {num_nodes}")
        self.engine = engine
        self.num_nodes = num_nodes
        self.params = params
        #: the ChaosController when fault injection is on, else None; every
        #: hook below is gated on one `is None` test so the chaos-off send
        #: path stays bit-identical
        self.chaos = chaos
        #: the DexScope sampler when time-series telemetry is on, else None
        #: (set by DexCluster after construction); the wire path measures
        #: per-link queueing delay only behind one `is None` test
        self.scope = None
        self.nics: List[NodeNIC] = [
            NodeNIC(engine, n, params) for n in range(num_nodes)
        ]
        self.routers: List[Router] = [Router(engine, n) for n in range(num_nodes)]
        if chaos is not None:
            for router in self.routers:
                router.attach_chaos(chaos, self)
        self.connections: Dict[Tuple[int, int], Connection] = {}
        for src in range(num_nodes):
            for dst in range(num_nodes):
                if src != dst:
                    self.connections[(src, dst)] = Connection(
                        engine, src, dst, params
                    )
        self.messages_sent = 0
        self.page_payloads = 0
        self.loopback_deliveries = 0
        #: message-freelist recycling is only sound when no other component
        #: retains message objects: the reliable transport (chaos runs)
        #: retransmits requests and caches replies, so it closes the gate
        self._recycle = _messages.FREELIST_DEFAULT and chaos is None

    def connection(self, src: int, dst: int) -> Connection:
        try:
            return self.connections[(src, dst)]
        except KeyError:
            raise ValueError(f"no connection {src}->{dst} (self-send or bad id)")

    def router(self, node_id: int) -> Router:
        return self.routers[node_id]

    # -- send paths ---------------------------------------------------------

    def send(self, msg: Message) -> Generator:
        """Generator: sender-side cost of posting *msg*; delivery continues
        asynchronously.  Yields until the send is posted."""
        tracer = self.engine.tracer
        if tracer is None:
            yield from self._send_impl(msg)
        else:
            with tracer.span(
                "net.send", node=msg.src,
                msg_type=msg.msg_type.value, dst=msg.dst,
            ):
                # stamp the trace context onto the wire header (no-op if the
                # caller already did); the receiver's router parents its
                # handler span on it
                tracer.inject(msg)
                # offer the stamped message to any online sinks (DexLens
                # flight recorder); free when no sink is registered
                tracer.note_message(msg)
                yield from self._send_impl(msg)

    def _send_impl(self, msg: Message) -> Generator:
        chaos = self.chaos
        if chaos is not None:
            if chaos.on_send(msg):
                return  # a fenced node sends nothing
            if msg.reply_to is not None:
                # remember outbound replies so a duplicate of the request
                # can be answered idempotently if this copy is lost
                self.routers[msg.src].note_reply_sent(msg)
        if msg.src == msg.dst:
            # kernel-local loopback: no NIC, pools, or wire involved —
            # the message is handed to this node's own router at zero
            # simulated cost, and (having never touched a lossy link)
            # delivery is reliable even under fault injection
            self.messages_sent += 1
            self.loopback_deliveries += 1
            self.routers[msg.dst].dispatch(msg)
            return
        conn = self.connection(msg.src, msg.dst)
        params = self.params
        self.messages_sent += 1
        conn.messages += 1

        yield from conn.send_pool.acquire()
        yield self.engine.timeout(params.verb_send_overhead)
        if msg.page_data is not None:
            self.page_payloads += 1
            yield from rdma.sender_data_cost(conn, msg.data_bytes)
        wire_bytes = msg.control_bytes + msg.data_bytes
        conn.bytes_on_wire += wire_bytes
        # claim a position in the connection's in-order delivery chain at
        # post time (RC semantics: receive order == post order)
        predecessor = conn._delivery_tail
        delivered = self.engine.event(name="delivered")
        conn._delivery_tail = delivered
        wire_proc = self.engine.process(
            self._wire(conn, msg, wire_bytes, predecessor, delivered),
            name="wire",
        )
        tracer = self.engine.tracer
        if tracer is not None:
            tracer.carry(wire_proc)

    def post(self, msg: Message):
        """Fire-and-forget send, run as its own process."""
        return self.engine.process(self.send(msg), name="send")

    def request(self, msg: Message) -> Generator:
        """Generator: send *msg* and wait for the correlated reply message.
        Returns the reply.

        With fault injection enabled the request rides the reliable
        transport (:meth:`_request_with_retry`); otherwise it is the plain
        single-shot path, kept verbatim so chaos-off sim time is
        bit-identical.  On that path the request object is recycled once
        the reply arrives: by then the responder's handler has posted the
        reply (its final use of the request) and the wire process has
        delivered, so the requester holds the only live reference."""
        if self.chaos is not None:
            reply = yield from self._request_with_retry(msg)
            return reply
        tracer = self.engine.tracer
        if tracer is None:
            reply_event = self.routers[msg.src].expect_reply(msg.msg_id)
            yield from self._send_impl(msg)
            reply = yield reply_event
            if self._recycle:
                recycle_message(msg)
            return reply
        with maybe_span(
            tracer, "net.request", node=msg.src,
            msg_type=msg.msg_type.value, dst=msg.dst,
        ):
            reply_event = self.routers[msg.src].expect_reply(msg.msg_id)
            yield from self.send(msg)
            reply = yield reply_event
        if self._recycle:
            recycle_message(msg)
        return reply

    def recycle(self, msg: Message) -> None:
        """Recycle a reply the caller has fully consumed.  No-op whenever
        recycling is unsound (fault injection on, or the freelist knob is
        off), so protocol code can call it unconditionally."""
        if self._recycle:
            recycle_message(msg)

    def _request_with_retry(self, msg: Message) -> Generator:
        """The reliable request path: retransmit on reply timeout with
        capped exponential backoff, bounded *consecutive silent* timeouts.

        Retransmissions reuse the message object, so the sequence number
        (``msg_id``) is stable and the responder's duplicate filter can
        suppress re-execution.  A ``REQUEST_ACK`` from the responder means
        the handler is legitimately still running (a delegated futex wait
        may block indefinitely): it resets the attempt budget and re-arms
        the reply without retransmitting, so only true silence counts
        against ``retry_max_attempts``.  Exhaustion reports the destination
        unreachable to the failure detector and raises
        :class:`NodeFailedError`."""
        chaos = self.chaos
        engine = self.engine
        params = self.params
        router = self.routers[msg.src]
        base_us = timeout_base_us(params, msg.msg_type)
        with maybe_span(
            engine.tracer, "net.request", node=msg.src,
            msg_type=msg.msg_type.value, dst=msg.dst, reliable=True,
        ):
            reply_event = router.expect_reply(msg.msg_id)
            chaos.track_request(msg, reply_event)
            try:
                yield from self.send(msg)
                attempts = 0
                while True:
                    deadline = engine.timeout(
                        backoff_delay(base_us, attempts, params.retry_backoff_cap_us)
                    )
                    try:
                        yield engine.any_of(
                            (reply_event, deadline),
                            name=f"retry:{msg.msg_type.value}#{msg.msg_id}",
                        )
                    finally:
                        # a deadline that lost the race (or died with us)
                        # must not advance the clock at queue-drain time
                        deadline.cancel()
                    if reply_event.triggered:
                        reply = reply_event.value  # re-raises detector aborts
                        while reply.msg_type is MsgType.REQUEST_ACK:
                            # responder alive, handler still running (e.g. a
                            # delegated futex wait that blocks until another
                            # thread wakes it).  Wait passively: probing on a
                            # timer would generate events forever if the
                            # handler never finishes, and post-ACK responder
                            # death is the failure detector's job — lease
                            # expiry fails the tracked reply event.
                            reply_event = router.expect_reply(msg.msg_id)
                            chaos.track_request(msg, reply_event)
                            reply = yield reply_event
                        return reply
                    attempts += 1
                    if attempts >= params.retry_max_attempts:
                        chaos.note_unreachable(msg.dst, msg)
                        raise NodeFailedError(
                            msg.dst,
                            f"no reply to {msg.msg_type.value}#{msg.msg_id} "
                            f"after {attempts} attempts",
                        )
                    chaos.note_retransmit(msg, attempts)
                    yield from self.send(msg)
            finally:
                router.cancel_reply(msg.msg_id)
                chaos.untrack_request(msg)

    def _wire(
        self, conn: Connection, msg: Message, wire_bytes: int, predecessor, delivered
    ) -> Generator:
        """Transmission + receiver side, as an asynchronous process."""
        with maybe_span(
            self.engine.tracer, "net.wire", node=conn.src,
            msg_type=msg.msg_type.value, dst=conn.dst, bytes=wire_bytes,
        ):
            yield from self._wire_impl(conn, msg, wire_bytes, predecessor, delivered)

    def _wire_impl(
        self, conn: Connection, msg: Message, wire_bytes: int, predecessor, delivered
    ) -> Generator:
        params = self.params
        # serialize onto the link under fair sharing with concurrent sends
        scope = self.scope
        if scope is None:
            yield self.nics[conn.src].tx.consume(wire_bytes, tag=msg.msg_type)
        else:
            sent_at = self.engine.now
            yield self.nics[conn.src].tx.consume(wire_bytes, tag=msg.msg_type)
            scope.note_wire(conn, wire_bytes, self.engine.now - sent_at)
        conn.send_pool.release()  # send completion reclaims the chunk
        yield self.engine.timeout(params.wire_latency)
        # receiver: consume a posted receive, reap the completion
        yield from conn.recv_pool.acquire()
        yield self.engine.timeout(params.verb_recv_overhead)
        if msg.page_data is not None:
            yield from rdma.receiver_data_cost(conn, msg.data_bytes)
        conn.recv_pool.release()  # re-post the receive work request
        chaos = self.chaos
        if chaos is None:
            if predecessor is not None and not predecessor.triggered:
                yield predecessor  # enforce RC in-order delivery
            self.routers[conn.dst].dispatch(msg)
            delivered.succeed()
            return
        verdict = chaos.on_deliver(msg, wire_bytes)
        if verdict is not None and verdict.extra_delay_us > 0.0:
            # the delayed message keeps its slot in the delivery chain —
            # head-of-line blocking, as on a real RC queue pair
            yield self.engine.timeout(verdict.extra_delay_us)
        if verdict is None or not verdict.reorder:
            if predecessor is not None and not predecessor.triggered:
                yield predecessor  # enforce RC in-order delivery
        if verdict is None or not verdict.drop:
            self.routers[conn.dst].dispatch(msg)
            if verdict is not None and verdict.duplicate:
                self.routers[conn.dst].dispatch(msg)
        # a dropped message must still release its chain slot, or every
        # later delivery on this connection waits forever
        delivered.succeed()

    # -- diagnostics ----------------------------------------------------------

    def pool_pressure(self) -> Dict[str, int]:
        """Total buffer-pool stalls across all connections (back-pressure
        events where a sender had to wait for a chunk)."""
        stats = {"send": 0, "recv": 0, "sink": 0}
        for conn in self.connections.values():
            stats["send"] += conn.send_pool.stalls
            stats["recv"] += conn.recv_pool.stalls
            stats["sink"] += conn.rdma_sink.stalls
        return stats
