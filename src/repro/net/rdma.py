"""Large-transfer data paths (§III-E).

DeX ships page data with one of three disciplines; the default is the
paper's hybrid, and the other two exist so the ablation benchmark can show
why the hybrid wins:

* ``rdma_sink`` — the paper's design: the receiver pre-registers a sink of
  page slots; the sender RDMA-writes into a slot, and on completion the
  receiver memcpy's the page to its final frame and recycles the slot.
  Costs: one RDMA post, the wire, one completion, one local memcpy.
* ``verb`` — push the page through the verb send path; the page buffer is
  not from the pre-mapped pool, so every send pays a DMA mapping.
* ``rdma_register`` — register the final frame as an RDMA region for every
  page ("dynamic RDMA region association is so costly that it can offset
  the benefit of RDMA").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.obs.tracing import maybe_span
from repro.params import SimParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Connection


def sender_data_cost(conn: "Connection", nbytes: int) -> Generator:
    """Sender-side preparation for *nbytes* of page data (before the wire)."""
    with maybe_span(
        conn.engine.tracer, "net.rdma_write", node=conn.src,
        bytes=nbytes, mode=conn.params.page_transfer_mode,
    ):
        yield from _sender_data_cost(conn, nbytes)


def _sender_data_cost(conn: "Connection", nbytes: int) -> Generator:
    params: SimParams = conn.params
    mode = params.page_transfer_mode
    engine = conn.engine
    if mode == "rdma_sink":
        # reserve a slot in the receiver's sink (address was exchanged at
        # request time) and post the RDMA write
        yield from conn.rdma_sink.acquire()
        yield engine.timeout(params.rdma_post_cost)
    elif mode == "verb":
        # page buffer is not from the pre-mapped pool: pay the DMA mapping
        yield engine.timeout(params.dma_map_cost + params.verb_send_overhead)
    elif mode == "rdma_register":
        yield engine.timeout(params.rdma_register_cost + params.rdma_post_cost)
    else:
        raise ValueError(f"unknown page_transfer_mode: {mode!r}")


def receiver_data_cost(conn: "Connection", nbytes: int) -> Generator:
    """Receiver-side handling of *nbytes* of page data (after the wire)."""
    with maybe_span(
        conn.engine.tracer, "net.rdma_recv", node=conn.dst,
        bytes=nbytes, mode=conn.params.page_transfer_mode,
    ):
        yield from _receiver_data_cost(conn, nbytes)


def _receiver_data_cost(conn: "Connection", nbytes: int) -> Generator:
    params: SimParams = conn.params
    mode = params.page_transfer_mode
    engine = conn.engine
    if mode == "rdma_sink":
        yield engine.timeout(params.rdma_completion_cost)
        # copy from the sink slot to the final frame, then recycle the slot
        yield engine.timeout(nbytes / params.memcpy_bandwidth)
        conn.rdma_sink.release()
    elif mode == "verb":
        # data landed in a freshly mapped buffer; copy out
        yield engine.timeout(nbytes / params.memcpy_bandwidth)
    elif mode == "rdma_register":
        # data landed directly in the final frame: no copy, but the region
        # must be torn down
        yield engine.timeout(params.rdma_completion_cost)
    else:
        raise ValueError(f"unknown page_transfer_mode: {mode!r}")
