"""DMA-mapped buffer pools and RDMA sinks (§III-E).

DMA mapping and RDMA region registration are costly, so DeX pre-maps pools
of physically contiguous chunks at connection setup and recycles them:

* the **send buffer pool** — a ring of chunks a sender composes outbound
  verb messages in; reclaimed on send completion;
* the **receive buffer pool** — posted receive work requests; recycled by
  re-posting after the incoming message is consumed;
* the **RDMA sink** — page-sized slots registered as one RDMA region; a
  peer RDMA-writes page data into a slot, the receiver memcpy's it to its
  final frame and releases the slot.

All three are modelled as counted resources: when a pool is exhausted the
caller stalls until a chunk is recycled (back-pressure), and the pool
records the stall so benchmarks can report pool pressure.
"""

from __future__ import annotations

from repro.sim import Engine, Resource


class BufferPool:
    """A ring of pre-mapped chunks.  ``acquire`` stalls when empty."""

    def __init__(self, engine: Engine, chunks: int, chunk_bytes: int, name: str = ""):
        self.engine = engine
        self.chunk_bytes = chunk_bytes
        self.name = name
        self._slots = Resource(engine, chunks, name=name)
        self.acquisitions = 0
        self.stalls = 0

    @property
    def chunks(self) -> int:
        return self._slots.capacity

    @property
    def in_use(self) -> int:
        return self._slots.in_use

    def acquire(self):
        """Generator: obtain one chunk, stalling under exhaustion."""
        self.acquisitions += 1
        grant = self._slots.acquire()
        if not grant.triggered:
            self.stalls += 1
            # let the deadlock detector's engine watcher see the stall:
            # buffer-pool exhaustion is a blocking site like any other, and
            # a stuck simulation's post-mortem must name exhausted pools
            # (the engine pre-binds each hook's on_pool_* methods at
            # add_hook time, so the hookless case iterates an empty list)
            for notify in self.engine._hooks_pool_stall:
                notify(self)
            try:
                yield grant
            finally:
                for notify in self.engine._hooks_pool_resume:
                    notify(self)
            return
        yield grant

    def release(self) -> None:
        self._slots.release()


class RdmaSink(BufferPool):
    """The per-connection RDMA landing zone: page-sized slots inside a
    single pre-registered RDMA memory region."""

    def __init__(self, engine: Engine, chunks: int, slot_bytes: int, name: str = ""):
        super().__init__(engine, chunks, slot_bytes, name=name)
