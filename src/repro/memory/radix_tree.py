"""A fixed-fanout radix tree keyed by page-sized integers.

The paper keeps per-page ownership "in a per-process radix tree which
indexes the information by the virtual page address" (§III-B).  This module
implements that structure: a 64-way tree over 48-bit keys (virtual page
numbers).  Compared to a flat dict it supports ordered range scans, which
the protocol uses for bulk invalidation on VMA shrink, and it exercises the
same sparse-index behaviour as the kernel's ``radix_tree``.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

_BITS_PER_LEVEL = 6
_FANOUT = 1 << _BITS_PER_LEVEL  # 64
_KEY_BITS = 48
_LEVELS = (_KEY_BITS + _BITS_PER_LEVEL - 1) // _BITS_PER_LEVEL  # 8
_MAX_KEY = (1 << _KEY_BITS) - 1

_TOMBSTONE = object()


class _Node:
    __slots__ = ("slots", "count")

    def __init__(self) -> None:
        self.slots: List[Any] = [None] * _FANOUT
        self.count = 0  # populated slots


class RadixTree:
    """Sparse integer-keyed map with ordered iteration.

    Keys must be in ``[0, 2**48)`` — the virtual-page-number space of a
    48-bit virtual address space with 4 KB pages.
    """

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    @staticmethod
    def _check_key(key: int) -> None:
        if not 0 <= key <= _MAX_KEY:
            raise KeyError(f"radix tree key out of range: {key}")

    @staticmethod
    def _index(key: int, level: int) -> int:
        shift = (_LEVELS - 1 - level) * _BITS_PER_LEVEL
        return (key >> shift) & (_FANOUT - 1)

    def insert(self, key: int, value: Any) -> None:
        """Set *key* to *value* (which must not be None)."""
        if value is None:
            raise ValueError("radix tree cannot store None; use delete()")
        self._check_key(key)
        node = self._root
        for level in range(_LEVELS - 1):
            idx = self._index(key, level)
            child = node.slots[idx]
            if child is None:
                child = _Node()
                node.slots[idx] = child
                node.count += 1
            node = child
        idx = self._index(key, _LEVELS - 1)
        if node.slots[idx] is None:
            node.count += 1
            self._size += 1
        node.slots[idx] = value

    def get(self, key: int, default: Any = None) -> Any:
        self._check_key(key)
        node = self._root
        for level in range(_LEVELS - 1):
            node = node.slots[self._index(key, level)]
            if node is None:
                return default
        value = node.slots[self._index(key, _LEVELS - 1)]
        return default if value is None else value

    def setdefault(self, key: int, factory) -> Any:
        found = self.get(key)
        if found is None:
            found = factory()
            self.insert(key, found)
        return found

    def delete(self, key: int) -> bool:
        """Remove *key*; returns whether it was present.  Empty interior
        nodes are pruned so memory stays proportional to occupancy."""
        self._check_key(key)
        path: List[Tuple[_Node, int]] = []
        node = self._root
        for level in range(_LEVELS - 1):
            idx = self._index(key, level)
            path.append((node, idx))
            node = node.slots[idx]
            if node is None:
                return False
        idx = self._index(key, _LEVELS - 1)
        if node.slots[idx] is None:
            return False
        node.slots[idx] = None
        node.count -= 1
        self._size -= 1
        # prune now-empty interior nodes bottom-up
        child = node
        for parent, pidx in reversed(path):
            if child.count > 0:
                break
            parent.slots[pidx] = None
            parent.count -= 1
            child = parent
        return True

    def iter_range(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(key, value)`` pairs with ``start <= key < stop`` in
        ascending key order."""
        if stop is None:
            stop = _MAX_KEY + 1
        if start >= stop:
            return
        yield from self._iter_node(self._root, 0, 0, start, stop)

    def _iter_node(
        self, node: _Node, level: int, prefix: int, start: int, stop: int
    ) -> Iterator[Tuple[int, Any]]:
        shift = (_LEVELS - 1 - level) * _BITS_PER_LEVEL
        span = 1 << shift
        for idx in range(_FANOUT):
            slot = node.slots[idx]
            if slot is None:
                continue
            lo = prefix | (idx << shift)
            hi = lo + span  # exclusive
            if hi <= start or lo >= stop:
                continue
            if level == _LEVELS - 1:
                yield lo, slot
            else:
                yield from self._iter_node(slot, level + 1, lo, start, stop)

    def items(self) -> Iterator[Tuple[int, Any]]:
        return self.iter_range()

    def keys(self) -> Iterator[int]:
        for key, _value in self.iter_range():
            yield key
