"""Physical page frames holding real bytes.

Every node keeps a :class:`FrameStore` per distributed process: virtual
page number -> a ``bytearray`` of one page.  Page data shipped by the
protocol is copied between stores byte-for-byte, so the distributed address
space is *correctness-bearing*: applications read back exactly what the
protocol delivered, and a protocol bug shows up as a wrong answer.
"""

from __future__ import annotations

from typing import Dict, Optional


class FrameStore:
    """Sparse physical memory for one (node, process)."""

    def __init__(self, page_size: int = 4096):
        self.page_size = page_size
        self._frames: Dict[int, bytearray] = {}
        self.pages_allocated = 0

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._frames

    def frame(self, vpn: int) -> bytearray:
        """The frame for *vpn*, allocated zero-filled on first touch
        (anonymous-memory semantics)."""
        frame = self._frames.get(vpn)
        if frame is None:
            frame = bytearray(self.page_size)
            self._frames[vpn] = frame
            self.pages_allocated += 1
        return frame

    def peek(self, vpn: int) -> Optional[bytearray]:
        return self._frames.get(vpn)

    def install(self, vpn: int, data: bytes) -> None:
        """Overwrite the frame for *vpn* with *data* (one full page)."""
        if len(data) != self.page_size:
            raise ValueError(
                f"page data must be exactly {self.page_size} bytes, got {len(data)}"
            )
        frame = self.frame(vpn)
        frame[:] = data

    def drop(self, vpn: int) -> None:
        self._frames.pop(vpn, None)

    def drop_range(self, vpn_start: int, vpn_end: int) -> int:
        victims = [v for v in self._frames if vpn_start <= v < vpn_end]
        for vpn in victims:
            del self._frames[vpn]
        return len(victims)

    def read(self, addr: int, length: int) -> bytes:
        """Read *length* bytes starting at byte address *addr*, crossing
        page boundaries as needed.  Pages never touched read as zeros."""
        vpn, offset = divmod(addr, self.page_size)
        if offset + length <= self.page_size:
            # hot path: the access fits in one page
            frame = self._frames.get(vpn)
            if frame is None:
                return bytes(length)
            return bytes(frame[offset : offset + length])
        out = bytearray()
        remaining = length
        while remaining > 0:
            vpn, offset = divmod(addr, self.page_size)
            take = min(remaining, self.page_size - offset)
            frame = self._frames.get(vpn)
            if frame is None:
                out.extend(b"\x00" * take)
            else:
                out.extend(frame[offset : offset + take])
            addr += take
            remaining -= take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write *data* starting at byte address *addr*."""
        vpn, offset = divmod(addr, self.page_size)
        if offset + len(data) <= self.page_size:
            self.frame(vpn)[offset : offset + len(data)] = data
            return
        pos = 0
        while pos < len(data):
            vpn, offset = divmod(addr + pos, self.page_size)
            take = min(len(data) - pos, self.page_size - offset)
            self.frame(vpn)[offset : offset + take] = data[pos : pos + take]
            pos += take
