"""Virtual memory areas and the per-address-space VMA map.

A :class:`VMA` describes a half-open address range ``[start, end)`` with a
protection and a human-readable tag (the paper's profiler tags faults with
"a user-specified identifier for tagging individual pieces of the
application", §IV-A).  The :class:`AddressSpaceMap` keeps VMAs sorted and
non-overlapping and implements the mmap/munmap/mprotect manipulations the
on-demand VMA synchronization of §III-D replays between nodes.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional


class VMAError(Exception):
    """Illegal VMA-map manipulation (overlap, unmapped range, ...)."""


class Protection(enum.IntFlag):
    NONE = 0
    READ = 1
    WRITE = 2
    READ_WRITE = READ | WRITE


@dataclass
class VMA:
    """One mapped range.  ``end`` is exclusive; both ends are page-aligned
    by the map (callers pass byte addresses)."""

    start: int
    end: int
    prot: Protection
    tag: str = ""
    #: monotonically bumped on every mutating operation at the origin; the
    #: on-demand sync uses it to detect stale remote copies
    version: int = 0

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise VMAError(f"empty VMA [{self.start:#x}, {self.end:#x})")

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def copy(self) -> "VMA":
        return VMA(self.start, self.end, self.prot, self.tag, self.version)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VMA([{self.start:#x}, {self.end:#x}) {self.prot.name}"
            f"{' ' + self.tag if self.tag else ''})"
        )


class AddressSpaceMap:
    """Sorted, non-overlapping set of VMAs with kernel-style manipulations.

    The map is used twice: the authoritative copy lives at the origin, and
    each remote node holds a lazily-populated replica updated by the
    on-demand VMA synchronization protocol.
    """

    def __init__(self, page_size: int = 4096):
        self.page_size = page_size
        self._vmas: List[VMA] = []  # sorted by start
        self._starts: List[int] = []

    def __len__(self) -> int:
        return len(self._vmas)

    def __iter__(self) -> Iterator[VMA]:
        return iter(self._vmas)

    def _align_down(self, addr: int) -> int:
        return addr - (addr % self.page_size)

    def _align_up(self, addr: int) -> int:
        return self._align_down(addr + self.page_size - 1)

    def find(self, addr: int) -> Optional[VMA]:
        """The VMA containing byte address *addr*, or None."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx >= 0 and addr in self._vmas[idx]:
            return self._vmas[idx]
        return None

    def find_overlapping(self, start: int, end: int) -> List[VMA]:
        idx = max(bisect.bisect_right(self._starts, start) - 1, 0)
        found = []
        for vma in self._vmas[idx:]:
            if vma.start >= end:
                break
            if vma.overlaps(start, end):
                found.append(vma)
        return found

    def _insert(self, vma: VMA) -> None:
        idx = bisect.bisect_left(self._starts, vma.start)
        self._vmas.insert(idx, vma)
        self._starts.insert(idx, vma.start)

    def _remove(self, vma: VMA) -> None:
        idx = bisect.bisect_left(self._starts, vma.start)
        assert self._vmas[idx] is vma
        del self._vmas[idx]
        del self._starts[idx]

    # -- manipulations -----------------------------------------------------

    def mmap(self, start: int, length: int, prot: Protection, tag: str = "") -> VMA:
        """Map ``[start, start+length)`` (page-aligned outward)."""
        if length <= 0:
            raise VMAError(f"mmap of non-positive length {length}")
        start = self._align_down(start)
        end = self._align_up(start + length)
        if self.find_overlapping(start, end):
            raise VMAError(f"mmap overlaps existing VMA: [{start:#x}, {end:#x})")
        vma = VMA(start, end, prot, tag)
        self._insert(vma)
        return vma

    def munmap(self, start: int, length: int) -> List[VMA]:
        """Unmap a range, splitting VMAs that straddle its edges.  Returns
        the (possibly partial) VMAs that were removed."""
        start = self._align_down(start)
        end = self._align_up(start + length)
        removed: List[VMA] = []
        for vma in self.find_overlapping(start, end):
            self._remove(vma)
            if vma.start < start:
                self._insert(VMA(vma.start, start, vma.prot, vma.tag, vma.version + 1))
            if vma.end > end:
                self._insert(VMA(end, vma.end, vma.prot, vma.tag, vma.version + 1))
            removed.append(
                VMA(max(vma.start, start), min(vma.end, end), vma.prot, vma.tag)
            )
        return removed

    def mprotect(self, start: int, length: int, prot: Protection) -> List[VMA]:
        """Change protection on a range, splitting at the edges.  The whole
        range must be mapped.  Returns the VMAs now covering the range."""
        start = self._align_down(start)
        end = self._align_up(start + length)
        covering = self.find_overlapping(start, end)
        covered = sum(min(v.end, end) - max(v.start, start) for v in covering)
        if covered != end - start:
            raise VMAError(
                f"mprotect of partially unmapped range [{start:#x}, {end:#x})"
            )
        result: List[VMA] = []
        for vma in covering:
            self._remove(vma)
            if vma.start < start:
                self._insert(VMA(vma.start, start, vma.prot, vma.tag, vma.version + 1))
            if vma.end > end:
                self._insert(VMA(end, vma.end, vma.prot, vma.tag, vma.version + 1))
            changed = VMA(
                max(vma.start, start), min(vma.end, end), prot, vma.tag, vma.version + 1
            )
            self._insert(changed)
            result.append(changed)
        return result

    def replace(self, vma: VMA) -> None:
        """Install an authoritative copy of *vma*, displacing anything it
        overlaps (used by remotes applying on-demand sync replies)."""
        for old in self.find_overlapping(vma.start, vma.end):
            self._remove(old)
            if old.start < vma.start:
                self._insert(VMA(old.start, vma.start, old.prot, old.tag, old.version))
            if old.end > vma.end:
                self._insert(VMA(vma.end, old.end, old.prot, old.tag, old.version))
        self._insert(vma.copy())

    def remove_range(self, start: int, end: int) -> None:
        """Drop any VMA pieces in ``[start, end)`` without returning them
        (remote side of an eager shrink broadcast)."""
        self.munmap(start, end - start)

    def total_mapped(self) -> int:
        return sum(v.end - v.start for v in self._vmas)
