"""Per-node page tables and PTE states for the consistency protocol.

Each node participating in a distributed process has a page table mapping
virtual page numbers to :class:`PTE` entries.  The protocol (§III-B) drives
pages through three states:

* ``INVALID`` — the node may not access the page; any access traps.
* ``SHARED`` — the node holds an up-to-date read-only replica; stores trap.
* ``EXCLUSIVE`` — the node is the single writer; loads and stores proceed.

``INVALID`` entries keep their frame data around so that the
"grant ownership without transferring the page data when the remote already
has the up-to-date one" optimization (§III-B) has something to revalidate;
the ``data_version`` field tells whether the retained copy is current.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple


class PageState(enum.Enum):
    INVALID = "invalid"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class PTE:
    state: PageState = PageState.INVALID
    #: version of the page contents this node last held; compared against
    #: the directory's version to decide whether data transfer can be
    #: skipped on an ownership grant
    data_version: int = -1

    @property
    def readable(self) -> bool:
        return self.state is not PageState.INVALID

    @property
    def writable(self) -> bool:
        return self.state is PageState.EXCLUSIVE


class PageTable:
    """Sparse map of virtual page number -> PTE for one (node, process)."""

    def __init__(self) -> None:
        self._entries: Dict[int, PTE] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, vpn: int) -> Optional[PTE]:
        return self._entries.get(vpn)

    def ensure(self, vpn: int) -> PTE:
        pte = self._entries.get(vpn)
        if pte is None:
            pte = PTE()
            self._entries[vpn] = pte
        return pte

    def set_state(self, vpn: int, state: PageState, data_version: Optional[int] = None) -> PTE:
        pte = self.ensure(vpn)
        pte.state = state
        if data_version is not None:
            pte.data_version = data_version
        return pte

    def drop(self, vpn: int) -> None:
        self._entries.pop(vpn, None)

    def drop_range(self, vpn_start: int, vpn_end: int) -> int:
        """Remove all entries with ``vpn_start <= vpn < vpn_end`` (VMA
        shrink); returns how many were removed."""
        victims = [v for v in self._entries if vpn_start <= v < vpn_end]
        for vpn in victims:
            del self._entries[vpn]
        return len(victims)

    def permits(self, vpn: int, write: bool) -> bool:
        pte = self._entries.get(vpn)
        if pte is None:
            return False
        return pte.writable if write else pte.readable

    def items(self) -> Iterator[Tuple[int, PTE]]:
        return iter(self._entries.items())
