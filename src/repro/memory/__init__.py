"""Per-node virtual-memory subsystem.

This substrate mirrors the two-level structure of the Linux VM subsystem the
paper builds on (§III-D): *virtual memory areas* (VMAs) describe address
ranges and their permissions, while *page-table entries* (PTEs) describe the
per-page state that the consistency protocol manipulates.  Page frames hold
real bytes, so data actually moves between nodes and protocol bugs corrupt
results rather than just timings.

The per-process ownership directory at the origin is indexed by a radix
tree, as in the paper ("a per-process radix tree which indexes the
information by the virtual page address", §III-B).
"""

from repro.memory.frames import FrameStore
from repro.memory.page_table import PageTable, PTE, PageState
from repro.memory.radix_tree import RadixTree
from repro.memory.vma import VMA, AddressSpaceMap, Protection, VMAError

__all__ = [
    "AddressSpaceMap",
    "FrameStore",
    "PTE",
    "PageState",
    "PageTable",
    "Protection",
    "RadixTree",
    "VMA",
    "VMAError",
]
