"""Turning fault traces into §IV's optimization recommendations.

"The tool helps identify data access patterns in the application which
cause the bottleneck and correct them."  This module encodes the paper's
playbook as rules over a :class:`~repro.tools.analysis.TraceAnalysis`:

* a page written from multiple nodes whose faults come from *different*
  tags/sites → co-located per-node objects: **split with posix_memalign /
  page alignment** (§IV-B heap & global fixes);
* a page on a stack VMA read by other nodes → **hoist parent-stack
  variables to arguments / globals** (§IV-B stack fix);
* a page with many read faults from many nodes and writes from few →
  read-mostly data invalidated by a co-located writer: **separate the
  read-only part onto its own page** (§V-C's NPB loop-parameter fix);
* one site producing a large share of write faults on one page from many
  nodes → a global counter/flag: **stage updates locally, publish once**
  (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.tools.analysis import PageReport, TraceAnalysis


@dataclass(frozen=True)
class Suggestion:
    """One actionable recommendation."""

    kind: str       # "split_page" | "hoist_stack" | "separate_read_only"
                    # | "stage_locally"
    vpn: int
    severity: int   # fault count backing the suggestion
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.kind}] page {self.vpn:#x} ({self.severity} faults): {self.message}"


class OptimizationAdvisor:
    """Applies the §IV playbook to a fault trace."""

    def __init__(self, analysis: TraceAnalysis, min_faults: int = 8):
        self.analysis = analysis
        self.min_faults = min_faults

    def suggest(self, top: int = 20) -> List[Suggestion]:
        suggestions: List[Suggestion] = []
        for page in self.analysis.hottest_pages(top=top):
            if page.faults < self.min_faults:
                continue
            suggestions.extend(self._rules(page))
        suggestions.sort(key=lambda s: -s.severity)
        return suggestions

    def _rules(self, page: PageReport) -> List[Suggestion]:
        out: List[Suggestion] = []
        writers = set(page.writer_nodes)
        readers = set(page.reader_nodes)
        stack_tags = [t for t in page.tags if t.startswith("stack")]

        if stack_tags and (readers | writers) - set(page.writer_nodes[:1]):
            out.append(
                Suggestion(
                    kind="hoist_stack",
                    vpn=page.vpn,
                    severity=page.faults,
                    message=(
                        f"threads on nodes {sorted(readers | writers)} touch "
                        f"the stack frame {stack_tags[0]!r}; pass the shared "
                        "variables as arguments or move them to globals "
                        "(§IV-B, stack)"
                    ),
                )
            )
        if len(writers) > 1 and len(page.sites) > 1:
            out.append(
                Suggestion(
                    kind="split_page",
                    vpn=page.vpn,
                    severity=page.faults,
                    message=(
                        f"written from nodes {sorted(writers)} at sites "
                        f"{list(page.sites)[:3]}; per-node objects share "
                        "this page — separate them with posix_memalign or "
                        "aligned attributes (§IV-B)"
                    ),
                )
            )
        if len(writers) == 1 and len(readers - writers) >= 2:
            out.append(
                Suggestion(
                    kind="separate_read_only",
                    vpn=page.vpn,
                    severity=page.faults,
                    message=(
                        f"read by nodes {sorted(readers)} but repeatedly "
                        f"invalidated by a writer on node "
                        f"{next(iter(writers))}; move the read-mostly data "
                        "to its own page so it stays replicated (§V-C)"
                    ),
                )
            )
        if len(writers) >= 2 and len(page.sites) <= 1:
            site = next(iter(page.sites), "?")
            out.append(
                Suggestion(
                    kind="stage_locally",
                    vpn=page.vpn,
                    severity=page.faults,
                    message=(
                        f"a single site ({site}) updates this page from "
                        f"nodes {sorted(writers)}: a global counter/flag — "
                        "stage updates per-thread and publish once (§IV-C)"
                    ),
                )
            )
        return out

    def report(self, top: int = 10) -> str:
        suggestions = self.suggest()
        if not suggestions:
            return "no optimization opportunities found (trace looks clean)"
        lines = [f"{len(suggestions)} optimization suggestion(s):"]
        lines.extend(f"  {s}" for s in suggestions[:top])
        return "\n".join(lines)
