"""Post-processing of page-fault traces (§IV-A).

"After the execution, the profiling tool post-processes the trace in
conjunction with the binary to provide a rich set of analyses, such as
identifying the program objects or source code locations that caused the
most page faults, page fault frequency over time, per-thread memory access
patterns, etc."

The false-sharing detector flags the §IV-B patterns directly: pages with
conflicting accesses (read/write or write/write) from more than one node.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.tools.tracer import FaultEvent, FaultTracer


@dataclass
class PageReport:
    """Contention summary for one page."""

    vpn: int
    faults: int
    writer_nodes: Tuple[int, ...]
    reader_nodes: Tuple[int, ...]
    tags: Tuple[str, ...]
    sites: Tuple[str, ...]
    #: (requesting node, revoked node, count) per invalidation pair — both
    #: parties of each bounce, from the trace's src_node attribution
    invalidation_pairs: Tuple[Tuple[int, int, int], ...] = ()

    @property
    def falsely_shared(self) -> bool:
        """Conflicting cross-node accesses: more than one writer node, or a
        writer plus readers elsewhere — the page will bounce."""
        if len(self.writer_nodes) > 1:
            return True
        if len(self.writer_nodes) == 1:
            others = set(self.reader_nodes) - set(self.writer_nodes)
            return bool(others)
        return False


class TraceAnalysis:
    """All §IV-A analyses over one trace."""

    def __init__(self, tracer: FaultTracer, page_size: int = 4096):
        self.events = list(tracer)
        self.page_size = page_size
        #: events the tracer had to drop past its max_events cap — surfaced
        #: in the report header so a truncated trace can't pass as complete
        self.dropped = getattr(tracer, "dropped", 0)

    # -- hot spots ---------------------------------------------------------

    def hottest_pages(self, top: int = 10) -> List[PageReport]:
        """Pages ordered by protocol fault count (invalidations excluded
        from the count, included in writer attribution)."""
        by_page: Dict[int, List[FaultEvent]] = defaultdict(list)
        for event in self.events:
            by_page[event.addr // self.page_size].append(event)
        reports = []
        for vpn, events in by_page.items():
            faults = [e for e in events if e.fault_type != "invalidate"]
            writers = sorted({e.node for e in faults if e.fault_type == "write"})
            readers = sorted({e.node for e in faults if e.fault_type == "read"})
            tags = tuple(sorted({e.tag for e in faults if e.tag}))
            sites = tuple(sorted({e.site for e in faults if e.site}))
            pairs: Counter = Counter(
                (e.src_node, e.node)
                for e in events
                if e.fault_type == "invalidate" and e.src_node >= 0
            )
            reports.append(
                PageReport(
                    vpn=vpn,
                    faults=len(faults),
                    writer_nodes=tuple(writers),
                    reader_nodes=tuple(readers),
                    tags=tags,
                    sites=sites,
                    invalidation_pairs=tuple(
                        (src, victim, count)
                        for (src, victim), count in sorted(pairs.items())
                    ),
                )
            )
        reports.sort(key=lambda r: r.faults, reverse=True)
        return reports[:top]

    def hottest_sites(self, top: int = 10) -> List[Tuple[str, int]]:
        """Source locations ("faulting instructions") by fault count — the
        paper's primary lead for finding optimization targets."""
        counter = Counter(
            e.site for e in self.events if e.fault_type != "invalidate" and e.site
        )
        return counter.most_common(top)

    def hottest_objects(self, top: int = 10) -> List[Tuple[str, int]]:
        """Program objects (VMA tags) by fault count."""
        counter = Counter(
            e.tag for e in self.events if e.fault_type != "invalidate" and e.tag
        )
        return counter.most_common(top)

    # -- false sharing ----------------------------------------------------------

    def false_sharing_candidates(self, top: int = 10) -> List[PageReport]:
        """Pages that bounce between nodes — §IV-B's optimization targets."""
        return [r for r in self.hottest_pages(top=len(self.events) or 1)
                if r.falsely_shared][:top]

    # -- time & thread structure ---------------------------------------------

    def fault_rate_over_time(self, bucket_us: float = 1000.0) -> List[Tuple[float, int]]:
        """(bucket start time, fault count) histogram — "page fault
        frequency over time"."""
        if bucket_us <= 0:
            raise ValueError(f"bucket must be positive, got {bucket_us}")
        buckets: Counter = Counter()
        for e in self.events:
            if e.fault_type != "invalidate":
                buckets[int(e.time_us // bucket_us)] += 1
        return [(b * bucket_us, n) for b, n in sorted(buckets.items())]

    def per_thread_pattern(self) -> Dict[int, Dict[str, int]]:
        """Per-task access summary: fault counts by type and the distinct
        page footprint — "per-thread memory access patterns"."""
        out: Dict[int, Dict[str, int]] = {}
        pages: Dict[int, set] = defaultdict(set)
        for e in self.events:
            if e.tid < 0:
                continue
            entry = out.setdefault(e.tid, {"read": 0, "write": 0})
            if e.fault_type in entry:
                entry[e.fault_type] += 1
            pages[e.tid].add(e.addr // self.page_size)
        for tid, entry in out.items():
            entry["distinct_pages"] = len(pages[tid])
        return out

    # -- reporting ----------------------------------------------------------

    def report(self, top: int = 5) -> str:
        """A human-readable summary, like the paper's tool output."""
        header = f"fault trace: {len(self.events)} events"
        if self.dropped:
            header += (
                f" (INCOMPLETE: {self.dropped} more dropped past the "
                "tracer's max_events cap)"
            )
        lines = [header]
        lines.append("hottest sites:")
        for site, count in self.hottest_sites(top):
            lines.append(f"  {count:8d}  {site}")
        lines.append("hottest objects (VMA tags):")
        for tag, count in self.hottest_objects(top):
            lines.append(f"  {count:8d}  {tag}")
        lines.append("false-sharing candidates:")
        for page in self.false_sharing_candidates(top):
            lines.append(
                f"  page {page.vpn:#x}: {page.faults} faults, writers "
                f"{list(page.writer_nodes)}, readers {list(page.reader_nodes)}, "
                f"tags {list(page.tags)}"
            )
            for src, victim, count in page.invalidation_pairs:
                lines.append(
                    f"    node {src} revoked node {victim} x{count}"
                )
        return "\n".join(lines)
