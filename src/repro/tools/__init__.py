"""The application-adaptation toolchain (§IV).

:class:`~repro.tools.tracer.FaultTracer` collects the paper's six-tuple per
protocol-visible page fault; :mod:`repro.tools.analysis` post-processes the
trace into the analyses §IV-A lists — hottest pages/objects/source sites,
fault frequency over time, per-thread access patterns — plus a false-sharing
detector that flags pages written by multiple nodes (the §IV-B targets).
"""

from repro.tools.analysis import TraceAnalysis
from repro.tools.tracer import FaultEvent, FaultTracer

__all__ = ["FaultEvent", "FaultTracer", "TraceAnalysis"]
