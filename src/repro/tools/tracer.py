"""The page-fault trace (§IV-A).

"DeX provides a profiling tool that collects a page fault trace containing
a six-tuple for each observed page fault requiring the memory consistency
protocol.  Each tuple contains the system time when the page fault
occurred, the node ID where the fault occurred, the task ID for the
faulting task, the type of the fault (i.e., read/write/invalidate), the
memory address of the faulting instruction, the memory address that caused
the fault, and a user-specified identifier for tagging individual pieces
of the application."

In this reproduction the "address of the faulting instruction" is the
``site`` label application code passes with its accesses (a source-location
string), and the user identifier is the tag of the VMA the fault landed in.
"""

from __future__ import annotations

import csv
import warnings
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class FaultEvent:
    """One trace record (the paper's six-tuple)."""

    time_us: float
    node: int
    tid: int
    fault_type: str  # "read" | "write" | "invalidate"
    site: str        # faulting "instruction": the access's source label
    addr: int        # faulting memory address
    tag: str = ""    # user identifier: the VMA tag
    #: for "invalidate" events: the node whose page request caused the
    #: revocation (-1 when unknown) — lets the false-sharing analysis name
    #: both parties of each bounce
    src_node: int = -1


class FaultTracer:
    """Collects :class:`FaultEvent` records; attach with
    :meth:`repro.core.DexProcess.attach_tracer`."""

    def __init__(self, max_events: int = 2_000_000):
        self.events: List[FaultEvent] = []
        self.max_events = max_events
        self.dropped = 0

    def record(
        self,
        time_us: float,
        node: int,
        tid: int,
        fault_type: str,
        site: str,
        addr: int,
        tag: str = "",
        src_node: int = -1,
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            if self.dropped == 1:
                # warn once: silently truncated traces used to masquerade
                # as complete ones in the analysis reports
                warnings.warn(
                    f"FaultTracer hit max_events={self.max_events}; "
                    "further fault events are being dropped "
                    "(see `dropped` and the analysis report header)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        self.events.append(
            FaultEvent(time_us, node, tid, fault_type, site, addr, tag, src_node)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -- persistence (the ftrace handoff analogue) -------------------------

    def save_csv(self, path: str) -> None:
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["time_us", "node", "tid", "fault_type", "site", "addr", "tag",
                 "src_node"]
            )
            for e in self.events:
                writer.writerow(
                    [e.time_us, e.node, e.tid, e.fault_type, e.site, e.addr,
                     e.tag, e.src_node]
                )

    @classmethod
    def load_csv(cls, path: str) -> "FaultTracer":
        tracer = cls()
        with open(path, newline="") as fh:
            for row in csv.DictReader(fh):
                tracer.events.append(
                    FaultEvent(
                        time_us=float(row["time_us"]),
                        node=int(row["node"]),
                        tid=int(row["tid"]),
                        fault_type=row["fault_type"],
                        site=row["site"],
                        addr=int(row["addr"]),
                        tag=row["tag"],
                        # traces written before the column existed load fine
                        src_node=int(row.get("src_node") or -1),
                    )
                )
        return tracer
