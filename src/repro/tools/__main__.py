"""CLI: ``python -m repro.tools <trace.csv>`` — post-process a fault trace.

The offline half of the §IV workflow: load a trace saved with
:meth:`FaultTracer.save_csv`, print the standard analyses, and emit the
optimization suggestions.
"""

from __future__ import annotations

import argparse
import sys

from repro.tools.analysis import TraceAnalysis
from repro.tools.suggestions import OptimizationAdvisor
from repro.tools.tracer import FaultTracer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Analyze a DeX page-fault trace (§IV).",
    )
    parser.add_argument("trace", help="CSV written by FaultTracer.save_csv")
    parser.add_argument("--top", type=int, default=5,
                        help="entries per analysis section")
    parser.add_argument("--bucket-us", type=float, default=1000.0,
                        help="bucket width for the fault-rate histogram")
    args = parser.parse_args(argv)

    tracer = FaultTracer.load_csv(args.trace)
    analysis = TraceAnalysis(tracer)
    print(analysis.report(top=args.top))
    print()
    histogram = analysis.fault_rate_over_time(bucket_us=args.bucket_us)
    if histogram:
        peak = max(count for _, count in histogram)
        print(f"fault rate over time ({args.bucket_us:.0f} us buckets, "
              f"peak {peak}):")
        for start, count in histogram[: args.top * 4]:
            bar = "#" * max(1, round(40 * count / peak))
            print(f"  {start:>12.0f} {bar} {count}")
        print()
    print(OptimizationAdvisor(analysis).report(top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
